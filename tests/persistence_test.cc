#include "storage/database_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "assess/session.h"
#include "common/crc32c.h"
#include "ssb/sales_generator.h"
#include "ssb/ssb_generator.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;
using ::assess::testutil::LabelMap;

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("assessdb_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  ~PersistenceTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, RoundTripsTheMiniDatabase) {
  testutil::MiniDb mini = BuildMiniSales();
  ASSERT_TRUE(SaveDatabase(*mini.db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const BoundCube* original = *mini.db->Find("SALES");
  const BoundCube* restored = *(*loaded)->Find("SALES");
  EXPECT_EQ(restored->facts().NumRows(), original->facts().NumRows());
  EXPECT_EQ(restored->schema().measure_count(),
            original->schema().measure_count());
  EXPECT_EQ(restored->schema().measure(1).name, "sales");
  EXPECT_TRUE(restored->Validate().ok());
  EXPECT_TRUE(restored->schema().hierarchy(0).temporal());

  // Same query, same cells.
  AssessSession before(mini.db.get());
  AssessSession after(loaded->get());
  const char* statement =
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using difference(quantity, benchmark.quantity) "
      "labels {[-inf, 0): behind, [0, inf]: ahead}";
  auto expected = before.Query(statement);
  auto actual = after.Query(statement);
  ASSERT_TRUE(expected.ok() && actual.ok());
  EXPECT_EQ(CellMap(expected->cube, "quantity"),
            CellMap(actual->cube, "quantity"));
  EXPECT_EQ(LabelMap(expected->cube), LabelMap(actual->cube));
}

TEST_F(PersistenceTest, RoundTripsSharedHierarchiesAcrossCubes) {
  SsbConfig config;
  config.scale_factor = 0.002;
  auto db = std::move(BuildSsbDatabase(config)).value();
  ASSERT_TRUE(SaveDatabase(*db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // SSB and BUDGET share hierarchies after the round trip, so external
  // benchmarks still join on identical dictionaries.
  const BoundCube* ssb = *(*loaded)->Find("SSB");
  const BoundCube* budget = *(*loaded)->Find("BUDGET");
  EXPECT_EQ(ssb->schema().hierarchy_ptr(0).get(),
            budget->schema().hierarchy_ptr(0).get());

  AssessSession before(db.get());
  AssessSession after(loaded->get());
  const char* statement =
      "with SSB by customer assess revenue against BUDGET.plannedRevenue "
      "using normalizedDifference(revenue, benchmark.plannedRevenue) "
      "labels {[-inf, 0): under, [0, inf]: over}";
  auto expected = before.Query(statement);
  auto actual = after.Query(statement);
  ASSERT_TRUE(expected.ok() && actual.ok());
  EXPECT_EQ(expected->cube.NumRows(), actual->cube.NumRows());
  EXPECT_EQ(LabelMap(expected->cube), LabelMap(actual->cube));
}

TEST_F(PersistenceTest, LoadRejectsMissingCatalog) {
  auto loaded = LoadDatabase((dir_ / "nowhere").string());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistenceTest, LoadRejectsWrongVersion) {
  std::filesystem::create_directories(dir_);
  std::ofstream out(dir_ / "catalog.assess");
  out << "assessdb 99\n";
  out.close();
  auto loaded = LoadDatabase(dir_.string());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotSupported);
}

TEST_F(PersistenceTest, LoadRejectsTruncatedColumns) {
  testutil::MiniDb mini = BuildMiniSales();
  ASSERT_TRUE(SaveDatabase(*mini.db, dir_.string()).ok());
  // Truncate one fact column: the manifest's size check catches the torn
  // file before any parse touches it.
  std::filesystem::resize_file(dir_ / "SALES.m0.bin", 4);
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptCheckpoint);
}

TEST_F(PersistenceTest, LoadRejectsBitFlippedColumns) {
  testutil::MiniDb mini = BuildMiniSales();
  ASSERT_TRUE(SaveDatabase(*mini.db, dir_.string()).ok());
  // Same size, different bytes: only the manifest CRC32C can tell.
  std::fstream f(dir_ / "SALES.m0.bin",
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(2, std::ios::beg);
  f.put('\x7F');
  f.close();
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptCheckpoint);
}

TEST_F(PersistenceTest, LoadRejectsDirectoryWithoutManifest) {
  testutil::MiniDb mini = BuildMiniSales();
  ASSERT_TRUE(SaveDatabase(*mini.db, dir_.string()).ok());
  // The manifest is written last, so a directory without one is the typed
  // signature of a save that was cut short.
  std::filesystem::remove(dir_ / "manifest");
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptCheckpoint);
}

TEST_F(PersistenceTest, LoadRejectsGarbageCatalog) {
  // A manifest-sealed directory whose catalog content is garbage: the
  // bytes are intact (CRC passes), so the parser's typed error surfaces.
  std::filesystem::create_directories(dir_);
  const std::string catalog = "assessdb 1\nhierarchies banana\n";
  std::ofstream out(dir_ / "catalog.assess");
  out << catalog;
  out.close();
  char entry[80];
  std::snprintf(entry, sizeof(entry), "file catalog.assess %zu %08x\n",
                catalog.size(), Crc32c(catalog));
  std::ofstream manifest(dir_ / "manifest");
  manifest << "assessmanifest 1\n" << entry;
  manifest.close();
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PersistenceTest, SaveIsIdempotent) {
  testutil::MiniDb mini = BuildMiniSales();
  ASSERT_TRUE(SaveDatabase(*mini.db, dir_.string()).ok());
  ASSERT_TRUE(SaveDatabase(*mini.db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->CubeNames(), std::vector<std::string>{"SALES"});
  // The atomic swap cleaned up after itself.
  EXPECT_FALSE(std::filesystem::exists(dir_.string() + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir_.string() + ".old"));
}

TEST_F(PersistenceTest, SaveReplacesAnExistingDatabaseAtomically) {
  testutil::MiniDb mini = BuildMiniSales();
  ASSERT_TRUE(SaveDatabase(*mini.db, dir_.string()).ok());

  // Grow the database, save over the same directory, and load: the new
  // contents are there, intact per the manifest, with no stray siblings.
  SsbConfig config;
  config.scale_factor = 0.002;
  auto bigger = std::move(BuildSsbDatabase(config)).value();
  ASSERT_TRUE(SaveDatabase(*bigger, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->Contains("SSB"));
  EXPECT_FALSE((*loaded)->Contains("SALES"));
  EXPECT_FALSE(std::filesystem::exists(dir_.string() + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir_.string() + ".old"));
}

}  // namespace
}  // namespace assess
