// Property suite: every feasible plan of a statement computes the same
// cube — same cells, same measure values, same comparison, same labels —
// and materialized views never change results, only access paths. This is
// the correctness backbone of Section 5's optimization story: NP, JOP and
// POP are rewrites of one logical plan (properties P1-P3).

#include <gtest/gtest.h>

#include <cmath>

#include "assess/session.h"
#include "ssb/sales_generator.h"
#include "ssb/ssb_generator.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;
using ::assess::testutil::LabelMap;

// Plan equivalence must compare real executions: with the result cache on,
// every plan after the first would be answered from the first plan's cached
// gets and the property would hold vacuously.
ExecutorOptions NoCacheOptions(bool use_views = true) {
  ExecutorOptions options;
  options.use_views = use_views;
  options.use_result_cache = false;
  return options;
}

void ExpectSameCells(const AssessResult& a, const AssessResult& b,
                     const std::string& context) {
  ASSERT_EQ(a.cube.NumRows(), b.cube.NumRows()) << context;
  for (const std::string& measure :
       {a.measure, a.benchmark_measure, a.comparison_measure}) {
    auto lhs = CellMap(a.cube, measure);
    auto rhs = CellMap(b.cube, measure);
    ASSERT_EQ(lhs.size(), rhs.size()) << context << " measure " << measure;
    for (const auto& [coord, value] : lhs) {
      auto it = rhs.find(coord);
      ASSERT_NE(it, rhs.end()) << context;
      if (std::isnan(value)) {
        EXPECT_TRUE(std::isnan(it->second)) << context;
      } else {
        EXPECT_NEAR(value, it->second, 1e-9 * (1.0 + std::fabs(value)))
            << context << " measure " << measure;
      }
    }
  }
  EXPECT_EQ(LabelMap(a.cube), LabelMap(b.cube)) << context;
}

class SalesPlanEquivalenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  SalesPlanEquivalenceTest() {
    SalesConfig config;
    config.facts = 60000;
    db_ = std::move(BuildSalesDatabase(config)).value();
    session_ = std::make_unique<AssessSession>(db_.get(), NoCacheOptions());
  }

  std::unique_ptr<StarDatabase> db_;
  std::unique_ptr<AssessSession> session_;
};

TEST_P(SalesPlanEquivalenceTest, AllFeasiblePlansAgree) {
  const char* text = GetParam();
  auto analyzed = session_->Prepare(text);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::vector<PlanKind> plans = FeasiblePlans(*analyzed);
  ASSERT_GE(plans.size(), 1u);
  auto baseline = session_->Query(text, plans[0]);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t i = 1; i < plans.size(); ++i) {
    auto other = session_->Query(text, plans[i]);
    ASSERT_TRUE(other.ok()) << other.status().ToString();
    ExpectSameCells(*baseline, *other,
                    std::string(PlanKindToString(plans[i])) + " vs " +
                        std::string(PlanKindToString(plans[0])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Statements, SalesPlanEquivalenceTest,
    ::testing::Values(
        // Sibling, coarse group-by.
        "with SALES for type = 'Fresh Fruit', country = 'Italy' "
        "by product, country assess quantity against country = 'France' "
        "using percOfTotal(difference(quantity, benchmark.quantity), "
        "quantity) labels {[-inf, -0.1): bad, [-0.1, 0.1]: ok, (0.1, inf]: "
        "good}",
        // Sibling at store level with a holistic-only using clause.
        "with SALES for city = 'Rome' by product, city assess storeSales "
        "against city = 'Paris' using zscore(difference(storeSales, "
        "benchmark.storeSales)) labels quartiles",
        // Sibling with assess*.
        "with SALES for country = 'Italy' by product, country "
        "assess* quantity against country = 'Greece' "
        "using difference(quantity, benchmark.quantity) "
        "labels {[-inf, inf]: seen}",
        // Past with a 4-month window over all stores.
        "with SALES for month = '1997-07' by month, store assess storeSales "
        "against past 4 using ratio(storeSales, benchmark.storeSales) "
        "labels {[0, 0.95): worse, [0.95, 1.05]: fine, (1.05, inf): better}",
        // Past with k = 2 and distribution labels.
        "with SALES for month = '1997-11' by month, store, product "
        "assess quantity against past 2 "
        "using difference(quantity, benchmark.quantity) labels quintiles",
        // Past with k = 1.
        "with SALES for month = '1996-06' by month, city assess storeSales "
        "against past 1 using ratio(storeSales, benchmark.storeSales) "
        "labels median"));

TEST(SsbPlanEquivalenceTest, WorkloadStatementsAgreeAcrossPlans) {
  SsbConfig config;
  config.scale_factor = 0.005;
  auto db = BuildSsbDatabase(config);
  ASSERT_TRUE(db.ok());
  AssessSession session(db->get(), NoCacheOptions());
  const char* statements[] = {
      "with SSB by customer assess revenue against BUDGET.plannedRevenue "
      "using normalizedDifference(revenue, benchmark.plannedRevenue) "
      "labels {[-inf, 0): under, [0, inf]: over}",
      "with SSB for s_region = 'ASIA' by c_nation, s_region assess quantity "
      "against s_region = 'AMERICA' using difference(quantity, "
      "benchmark.quantity) labels quartiles",
      "with SSB for month = '1998-06' by month, s_nation assess revenue "
      "against past 3 using ratio(revenue, benchmark.revenue) "
      "labels {[0, 1): below, [1, inf): above}",
  };
  for (const char* text : statements) {
    auto analyzed = session.Prepare(text);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    std::vector<PlanKind> plans = FeasiblePlans(*analyzed);
    auto baseline = session.Query(text, plans[0]);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_GT(baseline->cube.NumRows(), 0) << text;
    for (size_t i = 1; i < plans.size(); ++i) {
      auto other = session.Query(text, plans[i]);
      ASSERT_TRUE(other.ok()) << other.status().ToString();
      ExpectSameCells(*baseline, *other, text);
    }
  }
}

TEST(ViewEquivalenceTest, ViewsChangeAccessPathNotResults) {
  SalesConfig config;
  config.facts = 60000;
  auto db = std::move(BuildSalesDatabase(config)).value();

  const char* text =
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using difference(quantity, benchmark.quantity) labels quartiles";

  AssessSession without_views(db.get(), NoCacheOptions(/*use_views=*/false));
  auto baseline = without_views.Query(text, PlanKind::kPOP);
  ASSERT_TRUE(baseline.ok());

  StarQueryEngine materializer(db.get());
  ASSERT_TRUE(materializer
                  .MaterializeView(db.get(), "SALES",
                                   {"product", "country"}, "mv_pc")
                  .ok());
  AssessSession with_views(db.get(), NoCacheOptions(/*use_views=*/true));
  for (PlanKind plan : {PlanKind::kNP, PlanKind::kJOP, PlanKind::kPOP}) {
    auto accelerated = with_views.Query(text, plan);
    ASSERT_TRUE(accelerated.ok());
    ExpectSameCells(*baseline, *accelerated, "view-accelerated");
  }
}

}  // namespace
}  // namespace assess
