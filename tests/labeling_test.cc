#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "labeling/distribution_labeling.h"
#include "labeling/kmeans_labeling.h"
#include "labeling/label_function.h"
#include "labeling/range_labeling.h"
#include "olap/cube.h"

namespace assess {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::string> Apply(const LabelFunction& fn,
                               std::vector<double> values) {
  std::vector<std::string> labels;
  Status st = fn.Apply(std::span<const double>(values), &labels);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return labels;
}

// --- LabelRange ---------------------------------------------------------

TEST(LabelRangeTest, ContainsRespectsBounds) {
  LabelRange closed{0, 1, true, true, "x"};
  EXPECT_TRUE(closed.Contains(0));
  EXPECT_TRUE(closed.Contains(1));
  LabelRange open{0, 1, false, false, "x"};
  EXPECT_FALSE(open.Contains(0));
  EXPECT_FALSE(open.Contains(1));
  EXPECT_TRUE(open.Contains(0.5));
}

TEST(LabelRangeTest, InfiniteBounds) {
  LabelRange r{-kInf, -0.2, true, false, "bad"};
  EXPECT_TRUE(r.Contains(-1e300));
  EXPECT_FALSE(r.Contains(-0.2));
  EXPECT_EQ(r.ToString(), "[-inf, -0.2): bad");
}

// --- RangeLabeling construction ------------------------------------------

TEST(RangeLabelingTest, MakeRejectsEmpty) {
  EXPECT_FALSE(RangeLabeling::Make({}).ok());
}

TEST(RangeLabelingTest, MakeRejectsEmptyInterval) {
  EXPECT_FALSE(RangeLabeling::Make({{1, 0, true, true, "x"}}).ok());
  EXPECT_FALSE(RangeLabeling::Make({{1, 1, true, false, "x"}}).ok());
  // A closed point interval is fine.
  EXPECT_TRUE(RangeLabeling::Make({{1, 1, true, true, "x"}}).ok());
}

TEST(RangeLabelingTest, MakeRejectsNanAndEmptyLabel) {
  EXPECT_FALSE(RangeLabeling::Make({{std::nan(""), 1, true, true, "x"}}).ok());
  EXPECT_FALSE(RangeLabeling::Make({{0, 1, true, true, ""}}).ok());
}

TEST(RangeLabelingTest, MakeRejectsOverlap) {
  EXPECT_FALSE(RangeLabeling::Make({{0, 2, true, true, "a"},
                                    {1, 3, true, true, "b"}})
                   .ok());
  // Closed bounds touching at one point overlap...
  EXPECT_FALSE(RangeLabeling::Make({{0, 1, true, true, "a"},
                                    {1, 2, true, true, "b"}})
                   .ok());
  // ...but half-open adjacency is the canonical partition.
  EXPECT_TRUE(RangeLabeling::Make({{0, 1, true, false, "a"},
                                   {1, 2, true, true, "b"}})
                  .ok());
}

TEST(RangeLabelingTest, ApplyMapsPaperExample) {
  // The sibling labeling of Example 4.1.
  auto fn = *RangeLabeling::Make({{-kInf, -0.2, true, false, "bad"},
                                  {-0.2, 0.2, true, true, "ok"},
                                  {0.2, kInf, false, true, "good"}});
  auto labels = Apply(fn, {-0.23, -0.09, 0.05, -0.2, 0.2, 0.21});
  EXPECT_EQ(labels,
            (std::vector<std::string>{"bad", "ok", "ok", "ok", "ok", "good"}));
}

TEST(RangeLabelingTest, ApplyNullsGetEmptyLabel) {
  auto fn = *RangeLabeling::Make({{-kInf, kInf, true, true, "any"}});
  auto labels = Apply(fn, {1.0, kNullMeasure});
  EXPECT_EQ(labels[0], "any");
  EXPECT_EQ(labels[1], "");
}

TEST(RangeLabelingTest, ApplyUncoveredValueFails) {
  auto fn = *RangeLabeling::Make({{0, 1, true, true, "x"}});
  std::vector<std::string> labels;
  std::vector<double> values = {2.0};
  Status st = fn.Apply(std::span<const double>(values), &labels);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(RangeLabelingTest, ApplyPointIntervalAmongOpenNeighbors) {
  // [0,0] sorts next to (0,1]; probing 0 must find the point interval even
  // though the binary-search candidate is the open one.
  auto fn = *RangeLabeling::Make({{0, 0, true, true, "zero"},
                                  {0, 1, false, true, "pos"}});
  auto labels = Apply(fn, {0.0, 0.5});
  EXPECT_EQ(labels[0], "zero");
  EXPECT_EQ(labels[1], "pos");
}

TEST(RangeLabelingTest, BoundaryGoesToInclusiveSide) {
  auto fn = *RangeLabeling::Make({{0, 0.9, true, false, "bad"},
                                  {0.9, 1.1, true, true, "acceptable"},
                                  {1.1, kInf, false, true, "good"}});
  auto labels = Apply(fn, {0.9, 1.1, 1.1000001});
  EXPECT_EQ(labels,
            (std::vector<std::string>{"acceptable", "acceptable", "good"}));
}

TEST(RangeLabelingTest, Covers) {
  auto fn = *RangeLabeling::Make({{0, 1, true, false, "a"},
                                  {1, 2, true, true, "b"}});
  EXPECT_TRUE(fn.Covers(0, 2));
  EXPECT_TRUE(fn.Covers(0.5, 1.5));
  EXPECT_FALSE(fn.Covers(-1, 2));
  EXPECT_FALSE(fn.Covers(0, 3));
  auto gap = *RangeLabeling::Make({{0, 1, true, false, "a"},
                                   {1, 2, false, true, "b"}});
  EXPECT_FALSE(gap.Covers(0, 2));  // the point 1 is uncovered
  auto full = *RangeLabeling::Make({{-kInf, 0, true, false, "neg"},
                                    {0, kInf, true, true, "pos"}});
  EXPECT_TRUE(full.Covers(-kInf, kInf));
}

TEST(RangeLabelingTest, ToStringInlineForm) {
  auto fn = *RangeLabeling::Make({{0, 1, true, false, "a"}});
  EXPECT_EQ(fn.ToString(), "{[0, 1): a}");
  auto named = *RangeLabeling::Make({{0, 1, true, false, "a"}}, "5stars");
  EXPECT_EQ(named.ToString(), "5stars");
  EXPECT_EQ(named.name(), "5stars");
}

// --- QuantileLabeling ------------------------------------------------------

TEST(QuantileLabelingTest, QuartilesSplitEvenly) {
  auto fn = *QuantileLabeling::Make(4);
  auto labels = Apply(fn, {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(labels[0], "top-4");
  EXPECT_EQ(labels[1], "top-4");
  EXPECT_EQ(labels[2], "top-3");
  EXPECT_EQ(labels[3], "top-3");
  EXPECT_EQ(labels[4], "top-2");
  EXPECT_EQ(labels[5], "top-2");
  EXPECT_EQ(labels[6], "top-1");
  EXPECT_EQ(labels[7], "top-1");
}

TEST(QuantileLabelingTest, TiesShareLabels) {
  auto fn = *QuantileLabeling::Make(2);
  auto labels = Apply(fn, {5, 5, 5, 5});
  for (const std::string& l : labels) EXPECT_EQ(l, labels[0]);
}

TEST(QuantileLabelingTest, CustomLabels) {
  auto fn = *QuantileLabeling::Make(2, {"low", "high"});
  auto labels = Apply(fn, {1, 2, 3, 4});
  EXPECT_EQ(labels, (std::vector<std::string>{"low", "low", "high", "high"}));
}

TEST(QuantileLabelingTest, WrongLabelCountFails) {
  EXPECT_FALSE(QuantileLabeling::Make(3, {"a", "b"}).ok());
  EXPECT_FALSE(QuantileLabeling::Make(0).ok());
}

TEST(QuantileLabelingTest, NullsKeepNullLabel) {
  auto fn = *QuantileLabeling::Make(2);
  auto labels = Apply(fn, {1, kNullMeasure, 3});
  EXPECT_EQ(labels[1], "");
  EXPECT_NE(labels[0], "");
}

TEST(QuantileLabelingTest, AllNull) {
  auto fn = *QuantileLabeling::Make(4);
  auto labels = Apply(fn, {kNullMeasure, kNullMeasure});
  EXPECT_EQ(labels, (std::vector<std::string>{"", ""}));
}

// --- EquiWidthLabeling ------------------------------------------------------

TEST(EquiWidthLabelingTest, BinsByValueNotByCount) {
  auto fn = *EquiWidthLabeling::Make(2, {"low", "high"});
  // Skewed distribution: only the 10 lands in the upper half.
  auto labels = Apply(fn, {0, 1, 2, 10});
  EXPECT_EQ(labels, (std::vector<std::string>{"low", "low", "low", "high"}));
}

TEST(EquiWidthLabelingTest, MaxValueInLastBin) {
  auto fn = *EquiWidthLabeling::Make(4);
  auto labels = Apply(fn, {0, 1});
  EXPECT_EQ(labels[1], "top-1");
}

TEST(EquiWidthLabelingTest, DegenerateSingleValue) {
  auto fn = *EquiWidthLabeling::Make(3);
  auto labels = Apply(fn, {5, 5});
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], "");
}

// --- ZScoreLabeling ---------------------------------------------------------

TEST(ZScoreLabelingTest, FiveBuckets) {
  ZScoreLabeling fn;
  // mean 0, stddev 1 after standardization of a symmetric sample.
  auto labels = Apply(fn, {-10, -1, 0, 1, 10, 0, 0, 0, 0, 0});
  EXPECT_EQ(labels[0], "very-low");
  EXPECT_EQ(labels[4], "very-high");
  EXPECT_EQ(labels[2], "normal");
}

TEST(ZScoreLabelingTest, DegenerateAllEqual) {
  ZScoreLabeling fn;
  auto labels = Apply(fn, {3, 3, 3});
  EXPECT_EQ(labels, (std::vector<std::string>{"normal", "normal", "normal"}));
}

// --- KMeansLabeling ----------------------------------------------------------

TEST(KMeansLabelingTest, FitFindsSeparatedCentroids) {
  std::vector<double> sorted = {0, 1, 2, 100, 101, 102};
  auto centroids = KMeansLabeling::Fit(sorted, 2, 50);
  ASSERT_EQ(centroids.size(), 2u);
  EXPECT_NEAR(centroids[0], 1.0, 1e-9);
  EXPECT_NEAR(centroids[1], 101.0, 1e-9);
}

TEST(KMeansLabelingTest, LabelsAscendingByCentroid) {
  auto fn = *KMeansLabeling::Make(2);
  auto labels = Apply(fn, {0, 1, 100, 101});
  EXPECT_EQ(labels,
            (std::vector<std::string>{"cluster-1", "cluster-1", "cluster-2",
                                      "cluster-2"}));
}

TEST(KMeansLabelingTest, AutoKStopsEarlyOnSeparatedClusters) {
  auto fn = *KMeansLabeling::Make(5, /*auto_k=*/true);
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(i % 2 == 0 ? 0.0 : 1000.0);
  auto labels = Apply(fn, values);
  std::set<std::string> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 2u);  // the elbow stops at k = 2
}

TEST(KMeansLabelingTest, KLargerThanDataIsClamped) {
  auto fn = *KMeansLabeling::Make(10);
  auto labels = Apply(fn, {1.0, 2.0});
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_NE(labels[0], "");
}

TEST(KMeansLabelingTest, RejectsNonPositiveK) {
  EXPECT_FALSE(KMeansLabeling::Make(0).ok());
}

// --- Registry ----------------------------------------------------------------

TEST(LabelingRegistryTest, BuiltinsPresent) {
  LabelingRegistry registry = LabelingRegistry::Default();
  for (const char* name :
       {"median", "terciles", "quartiles", "quintiles", "deciles", "zscore",
        "kmeans-auto"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_FALSE(registry.Contains("5stars"));
}

TEST(LabelingRegistryTest, UserRegistration) {
  LabelingRegistry registry = LabelingRegistry::Default();
  auto stars = RangeLabeling::Make({{-1, -0.6, true, true, "*"},
                                    {-0.6, -0.2, false, true, "**"},
                                    {-0.2, 0.2, false, true, "***"},
                                    {0.2, 0.6, false, true, "****"},
                                    {0.6, 1, false, true, "*****"}},
                                   "5stars");
  ASSERT_TRUE(stars.ok());
  ASSERT_TRUE(
      registry.Register(std::make_shared<RangeLabeling>(std::move(*stars)))
          .ok());
  EXPECT_TRUE(registry.Find("5STARS").ok());
  EXPECT_EQ(registry
                .Register(std::make_shared<RangeLabeling>(
                    *RangeLabeling::Make({{0, 1, true, true, "x"}}, "5stars")))
                .code(),
            StatusCode::kAlreadyExists);
}

// --- Partition property (every labeling assigns exactly one label) ----------

class LabelingPartitionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelingPartitionTest, EveryValueGetsExactlyOneLabel) {
  Rng rng(GetParam());
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.NextDouble() * 100.0 - 50.0);
  }
  values.push_back(kNullMeasure);

  LabelingRegistry registry = LabelingRegistry::Default();
  for (const std::string& name : registry.Names()) {
    auto fn = *registry.Find(name);
    std::vector<std::string> labels;
    Status st = fn->Apply(std::span<const double>(values), &labels);
    ASSERT_TRUE(st.ok()) << name << ": " << st.ToString();
    ASSERT_EQ(labels.size(), values.size()) << name;
    for (size_t i = 0; i < values.size(); ++i) {
      if (IsNullMeasure(values[i])) {
        EXPECT_EQ(labels[i], "") << name;
      } else {
        EXPECT_NE(labels[i], "") << name;
      }
    }
  }
}

TEST_P(LabelingPartitionTest, QuantileGroupsAreContiguousInValueOrder) {
  Rng rng(GetParam() ^ 0xABCD);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.NextDouble());
  auto fn = *QuantileLabeling::Make(4);
  std::vector<std::string> labels;
  ASSERT_TRUE(fn.Apply(std::span<const double>(values), &labels).ok());
  // Sort by value; labels must be non-increasing in top-k rank order, i.e.
  // the group index (k - rank) is non-decreasing.
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  int prev_group = 0;
  for (size_t i : order) {
    int group = 4 - (labels[i][4] - '0');  // "top-N"
    EXPECT_GE(group, prev_group);
    prev_group = std::max(prev_group, group);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelingPartitionTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace assess
