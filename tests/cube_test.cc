#include "olap/cube.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace assess {
namespace {

std::shared_ptr<Hierarchy> MakeHier(const std::string& name,
                                    const std::string& level,
                                    const std::vector<std::string>& members) {
  auto h = std::make_shared<Hierarchy>(name);
  h->AddLevel(level);
  for (const std::string& m : members) h->AddMember(0, m);
  return h;
}

class CubeTest : public ::testing::Test {
 protected:
  CubeTest() {
    products_ = MakeHier("Product", "product", {"Apple", "Pear", "Lemon"});
    countries_ = MakeHier("Store", "country", {"Italy", "France"});
  }

  Cube MakeFigure1Cube() {
    // The cube C' of Figure 2: both country slices.
    Cube cube({LevelRef{products_, 0}, LevelRef{countries_, 0}},
              {"quantity"});
    cube.AddRow({0, 0}, {100});  // Apple, Italy
    cube.AddRow({1, 0}, {90});   // Pear, Italy
    cube.AddRow({2, 0}, {30});   // Lemon, Italy
    cube.AddRow({0, 1}, {150});  // Apple, France
    cube.AddRow({1, 1}, {110});  // Pear, France
    cube.AddRow({2, 1}, {20});   // Lemon, France
    return cube;
  }

  std::shared_ptr<Hierarchy> products_;
  std::shared_ptr<Hierarchy> countries_;
};

TEST_F(CubeTest, EmptyCube) {
  Cube cube({LevelRef{products_, 0}}, {"m"});
  EXPECT_EQ(cube.NumRows(), 0);
  EXPECT_EQ(cube.level_count(), 1);
  EXPECT_EQ(cube.measure_count(), 1);
}

TEST_F(CubeTest, AddRowStoresCoordinatesAndMeasures) {
  Cube cube = MakeFigure1Cube();
  EXPECT_EQ(cube.NumRows(), 6);
  EXPECT_EQ(cube.CoordName(0, 0), "Apple");
  EXPECT_EQ(cube.CoordName(0, 1), "Italy");
  EXPECT_EQ(cube.MeasureAt(0, 0), 100);
  EXPECT_EQ(cube.CoordAt(3, 1), 1);
}

TEST_F(CubeTest, LevelPositionAndMeasureIndex) {
  Cube cube = MakeFigure1Cube();
  EXPECT_EQ(*cube.LevelPosition("country"), 1);
  EXPECT_FALSE(cube.LevelPosition("month").ok());
  EXPECT_EQ(*cube.MeasureIndex("quantity"), 0);
  EXPECT_FALSE(cube.MeasureIndex("sales").ok());
}

TEST_F(CubeTest, AddMeasureColumnIsNullFilled) {
  Cube cube = MakeFigure1Cube();
  int idx = cube.AddMeasureColumn("derived");
  EXPECT_EQ(idx, 1);
  for (int64_t r = 0; r < cube.NumRows(); ++r) {
    EXPECT_TRUE(IsNullMeasure(cube.MeasureAt(r, idx)));
  }
  cube.SetMeasure(2, idx, 7.0);
  EXPECT_EQ(cube.MeasureAt(2, idx), 7.0);
}

TEST_F(CubeTest, RowsAddedAfterNewMeasureStayAligned) {
  Cube cube = MakeFigure1Cube();
  cube.AddMeasureColumn("derived");
  cube.AddRow({0, 0}, {1.0, 2.0});
  EXPECT_EQ(cube.MeasureAt(6, 1), 2.0);
}

TEST_F(CubeTest, SortByCoordinatesIsCanonical) {
  Cube cube = MakeFigure1Cube();
  cube.SetLabels({"a", "b", "c", "d", "e", "f"});
  cube.SortByCoordinates();
  // Apple(0) rows first, Italy(0) before France(1).
  EXPECT_EQ(cube.CoordName(0, 0), "Apple");
  EXPECT_EQ(cube.CoordName(0, 1), "Italy");
  EXPECT_EQ(cube.MeasureAt(0, 0), 100);
  EXPECT_EQ(cube.labels()[0], "a");
  EXPECT_EQ(cube.CoordName(1, 0), "Apple");
  EXPECT_EQ(cube.CoordName(1, 1), "France");
  EXPECT_EQ(cube.MeasureAt(1, 0), 150);
  EXPECT_EQ(cube.labels()[1], "d");
  EXPECT_EQ(cube.CoordName(5, 1), "France");
}

TEST_F(CubeTest, FromColumnsBuildsWithoutCopy) {
  Cube cube = Cube::FromColumns({LevelRef{products_, 0}}, {{0, 1, 2}},
                                {"m"}, {{1.0, 2.0, 3.0}});
  EXPECT_EQ(cube.NumRows(), 3);
  EXPECT_EQ(cube.MeasureAt(2, 0), 3.0);
}

TEST_F(CubeTest, ToStringTruncates) {
  Cube cube = MakeFigure1Cube();
  std::string s = cube.ToString(2);
  EXPECT_NE(s.find("product | country | quantity"), std::string::npos);
  EXPECT_NE(s.find("(4 more cells)"), std::string::npos);
}

TEST_F(CubeTest, NullMeasureDetection) {
  EXPECT_TRUE(IsNullMeasure(kNullMeasure));
  EXPECT_FALSE(IsNullMeasure(0.0));
  EXPECT_FALSE(IsNullMeasure(std::numeric_limits<double>::infinity()));
}

TEST_F(CubeTest, CoordinateIndexFullKey) {
  Cube cube = MakeFigure1Cube();
  CoordinateIndex index(cube, {0, 1});
  EXPECT_EQ(index.DistinctKeys(), 6);
  const auto& rows = index.Lookup(cube, {0, 1}, 4);  // Pear, France
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 4);
}

TEST_F(CubeTest, CoordinateIndexSubsetKeyMultiMatch) {
  Cube cube = MakeFigure1Cube();
  CoordinateIndex index(cube, {0});  // by product only
  EXPECT_EQ(index.DistinctKeys(), 3);
  const auto& rows = index.Lookup(cube, {0}, 0);  // Apple
  EXPECT_EQ(rows.size(), 2u);  // Italy + France slices
}

TEST_F(CubeTest, CoordinateIndexProbeFromAnotherCube) {
  Cube cube = MakeFigure1Cube();
  // A one-row probe cube over the same hierarchies.
  Cube probe({LevelRef{products_, 0}, LevelRef{countries_, 0}}, {"x"});
  probe.AddRow({2, 1}, {0});  // Lemon, France
  CoordinateIndex index(cube, {0, 1});
  const auto& rows = index.Lookup(probe, {0, 1}, 0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(cube.MeasureAt(rows[0], 0), 20);
}

TEST_F(CubeTest, CoordinateIndexMiss) {
  Cube cube({LevelRef{products_, 0}}, {"m"});
  cube.AddRow({0}, {1.0});
  CoordinateIndex index(cube, {0});
  Cube probe({LevelRef{products_, 0}}, {"m"});
  probe.AddRow({2}, {0.0});
  EXPECT_TRUE(index.Lookup(probe, {0}, 0).empty());
}

TEST_F(CubeTest, CoordinateIndexEmptyCube) {
  Cube cube({LevelRef{products_, 0}}, {"m"});
  CoordinateIndex index(cube, {0});
  EXPECT_EQ(index.DistinctKeys(), 0);
}

}  // namespace
}  // namespace assess
