// Edge cases of the view-answerability rule (RollupAnswersQuery /
// ViewAnswersQuery) that the result cache's subsumption matcher shares:
// avg-measure disqualification, predicate levels relative to the view's
// group-by, and empty-view behavior.

#include <gtest/gtest.h>

#include "storage/materialized_view.h"
#include "storage/star_query_engine.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;

class MaterializedViewTest : public ::testing::Test {
 protected:
  MaterializedViewTest() : mini_(testutil::BuildMiniSales()) {}

  CubeQuery Query(const std::vector<std::string>& by,
                  std::vector<Predicate> preds,
                  const std::vector<std::string>& measures) {
    auto q = CubeQuery::Make(*mini_.schema, "SALES", by, std::move(preds),
                             measures);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  MaterializedView MakeView(const std::vector<std::string>& levels,
                            const std::string& name) {
    StarQueryEngine engine(mini_.db.get());
    EXPECT_TRUE(
        engine.MaterializeView(mini_.db.get(), "SALES", levels, name).ok());
    const BoundCube* bound = *mini_.db->Find("SALES");
    return bound->views().back();
  }

  testutil::MiniDb mini_;
};

TEST_F(MaterializedViewTest, AvgMeasureDisqualifiesTheView) {
  // An avg measure cannot be re-aggregated from pre-aggregated cells, even
  // when every level is available at finer granularity.
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  hier->AddLevel("g");
  MemberId k0 = hier->AddMember(0, "k0");
  MemberId g0 = hier->AddMember(1, "g0");
  hier->SetParent(0, k0, g0);
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  schema->AddMeasure({"a", AggOp::kAvg});

  GroupBySet fine(1);
  fine.SetLevel(0, 0);
  MaterializedView view{"v", fine, Cube({LevelRef{hier, 0}}, {"s", "a"})};

  CubeQuery sum_query;
  sum_query.cube_name = "T";
  sum_query.group_by = GroupBySet(1);
  sum_query.group_by.SetLevel(0, 1);
  sum_query.measures = {0};
  EXPECT_TRUE(ViewAnswersQuery(*schema, sum_query, view));

  CubeQuery avg_query = sum_query;
  avg_query.measures = {0, 1};
  EXPECT_FALSE(ViewAnswersQuery(*schema, avg_query, view));
}

TEST_F(MaterializedViewTest, PredicateCoarserThanViewGroupByIsAnswerable) {
  // View at month granularity; a predicate on year (coarser) is evaluable
  // by rolling the view's month members up.
  MaterializedView view = MakeView({"month", "product", "store"}, "mv_m");
  CubeQuery q = Query({"product"}, {{0, 2, PredicateOp::kEquals, {"1997"}}},
                      {"quantity"});
  EXPECT_TRUE(ViewAnswersQuery(*mini_.schema, q, view));

  StarQueryEngine with_views(mini_.db.get());
  StarQueryEngine no_views(mini_.db.get(), /*use_views=*/false);
  Cube expected = *no_views.Execute(q);
  Cube actual = *with_views.Execute(q);
  EXPECT_TRUE(with_views.last_used_view());
  EXPECT_EQ(CellMap(expected, "quantity"), CellMap(actual, "quantity"));
}

TEST_F(MaterializedViewTest, PredicateFinerThanViewGroupByDisqualifies) {
  // View at year granularity cannot evaluate a month-level slice: the
  // year cells aggregate over the months the predicate must discriminate.
  MaterializedView view = MakeView({"year", "product"}, "mv_y");
  CubeQuery q = Query({"product"},
                      {{0, 1, PredicateOp::kEquals, {"1997-07"}}},
                      {"quantity"});
  EXPECT_FALSE(ViewAnswersQuery(*mini_.schema, q, view));
  EXPECT_EQ(PickBestView(*mini_.schema, q, {view}), -1);
}

TEST_F(MaterializedViewTest, PredicateOnHierarchyAbsentFromViewDisqualifies) {
  MaterializedView view = MakeView({"month", "product"}, "mv_mp");
  CubeQuery q = Query({"product"}, {{2, 1, PredicateOp::kEquals, {"Italy"}}},
                      {"quantity"});
  EXPECT_FALSE(ViewAnswersQuery(*mini_.schema, q, view));
}

TEST_F(MaterializedViewTest, EmptyViewAnswersWithEmptyCube) {
  // A view over an empty fact table is picked (0 rows is the smallest
  // applicable view) and yields an empty result without error.
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  hier->AddLevel("g");
  MemberId k0 = hier->AddMember(0, "k0");
  MemberId g0 = hier->AddMember(1, "g0");
  hier->SetParent(0, k0, g0);
  auto schema = std::make_shared<CubeSchema>("E");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  DimensionTable dim("k", hier);
  dim.AddRow({k0, g0});
  FactTable facts("E", 1, 1);
  StarDatabase db;
  ASSERT_TRUE(db.Register("E", std::make_unique<BoundCube>(
                                   schema, std::vector<DimensionTable>{dim},
                                   std::move(facts)))
                  .ok());
  StarQueryEngine engine(&db);
  auto rows = engine.MaterializeView(&db, "E", {"k"}, "mv_empty");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, 0);

  CubeQuery q = *CubeQuery::Make(*schema, "E", {"g"}, {}, {"s"});
  auto cube = engine.Execute(q);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_TRUE(engine.last_used_view());
  EXPECT_EQ(cube->NumRows(), 0);
}

}  // namespace
}  // namespace assess
