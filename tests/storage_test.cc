#include <gtest/gtest.h>

#include "storage/materialized_view.h"
#include "storage/predicate.h"
#include "storage/star_schema.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : mini_(BuildMiniSales()) {
    bound_ = *mini_.db->Find("SALES");
  }
  const CubeSchema& schema() const { return *mini_.schema; }
  const Hierarchy& product_hier() const { return schema().hierarchy(1); }
  const Hierarchy& date_hier() const { return schema().hierarchy(0); }

  testutil::MiniDb mini_;
  const BoundCube* bound_ = nullptr;
};

TEST_F(StorageTest, DimensionTableShape) {
  const DimensionTable& products = bound_->dimension(1);
  EXPECT_EQ(products.NumRows(), 4);
  EXPECT_EQ(products.hierarchy().name(), "Product");
  // Row 0 is Apple -> Fresh Fruit.
  EXPECT_EQ(products.hierarchy().MemberName(0, products.CodeAt(0, 0)),
            "Apple");
  EXPECT_EQ(products.hierarchy().MemberName(1, products.CodeAt(0, 1)),
            "Fresh Fruit");
}

TEST_F(StorageTest, DimensionValidateCatchesInconsistentRow) {
  auto h = std::make_shared<Hierarchy>("H");
  h->AddLevel("a");
  h->AddLevel("b");
  MemberId b1 = h->AddMember(1, "b1");
  MemberId b2 = h->AddMember(1, "b2");
  MemberId a1 = h->AddMember(0, "a1");
  h->SetParent(0, a1, b1);
  DimensionTable dim("d", h);
  dim.AddRow({a1, b2});  // disagrees with the part-of mapping (a1 >= b1)
  EXPECT_FALSE(dim.Validate().ok());
}

TEST_F(StorageTest, FactTableShape) {
  const FactTable& facts = bound_->facts();
  EXPECT_EQ(facts.NumRows(), 17);
  EXPECT_EQ(facts.dimension_count(), 3);
  EXPECT_EQ(facts.measure_count(), 2);
}

TEST_F(StorageTest, BoundCubeValidates) {
  EXPECT_TRUE(bound_->Validate().ok());
}

TEST_F(StorageTest, BoundCubeValidateCatchesDanglingForeignKey) {
  testutil::MiniDb broken = BuildMiniSales();
  BoundCube* cube = *broken.db->FindMutable("SALES");
  // Rebuild the bound cube with one fact pointing beyond the dimension.
  FactTable facts("SALES", 3, 2);
  facts.AddRow({0, 99, 0}, {1, 1});
  std::vector<DimensionTable> dims;
  for (int h = 0; h < broken.schema->hierarchy_count(); ++h) {
    dims.push_back(cube->dimension(h));
  }
  BoundCube bad(broken.schema, std::move(dims), std::move(facts));
  Status st = bad.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("dangling"), std::string::npos);
}

TEST_F(StorageTest, DatabaseRegistryAndLookup) {
  EXPECT_TRUE(mini_.db->Contains("SALES"));
  EXPECT_FALSE(mini_.db->Contains("SSB"));
  EXPECT_TRUE(mini_.db->Find("SALES").ok());
  EXPECT_FALSE(mini_.db->Find("SSB").ok());
  EXPECT_EQ(mini_.db->CubeNames(), std::vector<std::string>{"SALES"});
}

TEST_F(StorageTest, DuplicateRegistrationFails) {
  Status st = mini_.db->Register(
      "SALES", std::make_unique<BoundCube>(mini_.schema,
                                           std::vector<DimensionTable>{},
                                           FactTable("x", 0, 0)));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(StorageTest, DomainFlagsEquals) {
  Predicate p{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}};
  auto flags = BuildDomainFlags(product_hier(), p);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags, (std::vector<uint8_t>{1, 0}));  // Fresh Fruit, Dairy
}

TEST_F(StorageTest, DomainFlagsIn) {
  Predicate p{1, 0, PredicateOp::kIn, {"Apple", "Lemon"}};
  auto flags = BuildDomainFlags(product_hier(), p);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags, (std::vector<uint8_t>{1, 0, 1, 0}));
}

TEST_F(StorageTest, DomainFlagsBetween) {
  Predicate p{0, 1, PredicateOp::kBetween, {"1997-04", "1997-06"}};
  auto flags = BuildDomainFlags(date_hier(), p);
  ASSERT_TRUE(flags.ok());
  int matched = 0;
  for (MemberId m = 0; m < date_hier().LevelCardinality(1); ++m) {
    if ((*flags)[m]) {
      ++matched;
      EXPECT_GE(date_hier().MemberName(1, m), "1997-04");
      EXPECT_LE(date_hier().MemberName(1, m), "1997-06");
    }
  }
  EXPECT_EQ(matched, 3);
}

TEST_F(StorageTest, DomainFlagsUnknownMemberFails) {
  Predicate p{1, 0, PredicateOp::kEquals, {"Durian"}};
  EXPECT_FALSE(BuildDomainFlags(product_hier(), p).ok());
}

TEST_F(StorageTest, DomainFlagsBetweenNeedsTwoBounds) {
  Predicate p{0, 1, PredicateOp::kBetween, {"1997-04"}};
  EXPECT_FALSE(BuildDomainFlags(date_hier(), p).ok());
}

TEST_F(StorageTest, ConjunctionFlagsRollUpPredicates) {
  // Evaluate at product level a predicate on type.
  std::vector<Predicate> preds = {
      {1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}};
  auto flags = BuildConjunctionFlags(product_hier(), preds, 0);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags, (std::vector<uint8_t>{1, 1, 1, 0}));  // milk fails
}

TEST_F(StorageTest, ConjunctionFlagsIntersect) {
  std::vector<Predicate> preds = {
      {1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
      {1, 0, PredicateOp::kIn, {"Apple", "milk"}}};
  auto flags = BuildConjunctionFlags(product_hier(), preds, 0);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags, (std::vector<uint8_t>{1, 0, 0, 0}));  // only Apple
}

TEST_F(StorageTest, ConjunctionFlagsRejectFinerPredicate) {
  // Predicate on product cannot be evaluated at type granularity.
  std::vector<Predicate> preds = {{1, 0, PredicateOp::kEquals, {"Apple"}}};
  EXPECT_FALSE(BuildConjunctionFlags(product_hier(), preds, 1).ok());
}

TEST_F(StorageTest, DimensionRowFlags) {
  std::vector<Predicate> preds = {
      {2, 1, PredicateOp::kEquals, {"Italy"}}};
  auto flags = BuildDimensionRowFlags(bound_->dimension(2), preds);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags, (std::vector<uint8_t>{1, 0}));  // SmartMart yes, PetitPrix no
}

TEST_F(StorageTest, EmptyPredicatesPassEverything) {
  auto flags = BuildDimensionRowFlags(bound_->dimension(2), {});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags, (std::vector<uint8_t>{1, 1}));
}

class MaterializedViewTest : public StorageTest {};

TEST_F(MaterializedViewTest, ViewAnswersCoarserQuery) {
  MaterializedView view;
  view.name = "by_product_country";
  view.group_by = *GroupBySet::FromLevelNames(schema(), {"product", "country"});
  CubeQuery query;
  query.group_by = *GroupBySet::FromLevelNames(schema(), {"type"});
  query.measures = {0};
  EXPECT_TRUE(ViewAnswersQuery(schema(), query, view));
}

TEST_F(MaterializedViewTest, ViewRejectsFinerQuery) {
  MaterializedView view;
  view.group_by = *GroupBySet::FromLevelNames(schema(), {"type"});
  CubeQuery query;
  query.group_by = *GroupBySet::FromLevelNames(schema(), {"product"});
  query.measures = {0};
  EXPECT_FALSE(ViewAnswersQuery(schema(), query, view));
}

TEST_F(MaterializedViewTest, ViewRejectsMissingHierarchy) {
  MaterializedView view;
  view.group_by = *GroupBySet::FromLevelNames(schema(), {"product"});
  CubeQuery query;
  query.group_by = *GroupBySet::FromLevelNames(schema(), {"product"});
  query.predicates = {{2, 1, PredicateOp::kEquals, {"Italy"}}};
  query.measures = {0};
  EXPECT_FALSE(ViewAnswersQuery(schema(), query, view));
}

TEST_F(MaterializedViewTest, ViewRejectsFinerPredicateLevel) {
  MaterializedView view;
  view.group_by = *GroupBySet::FromLevelNames(schema(), {"product", "country"});
  CubeQuery query;
  query.group_by = *GroupBySet::FromLevelNames(schema(), {"product"});
  query.predicates = {{2, 0, PredicateOp::kEquals, {"SmartMart"}}};
  query.measures = {0};
  EXPECT_FALSE(ViewAnswersQuery(schema(), query, view));
}

TEST_F(MaterializedViewTest, AvgMeasureDisqualifies) {
  CubeSchema avg_schema("X");
  avg_schema.AddHierarchy(mini_.schema->hierarchy_ptr(1));
  avg_schema.AddMeasure({"m", AggOp::kAvg});
  MaterializedView view;
  view.group_by = *GroupBySet::FromLevelNames(avg_schema, {"product"});
  CubeQuery query;
  query.group_by = *GroupBySet::FromLevelNames(avg_schema, {"type"});
  query.measures = {0};
  EXPECT_FALSE(ViewAnswersQuery(avg_schema, query, view));
}

TEST_F(MaterializedViewTest, PickBestPrefersSmallest) {
  MaterializedView big;
  big.group_by = *GroupBySet::FromLevelNames(schema(), {"product", "country"});
  big.data = Cube({}, {});
  MaterializedView small;
  small.group_by = *GroupBySet::FromLevelNames(schema(), {"type", "country"});
  small.data = Cube({}, {});
  // Sizes: fake by adding rows to `big` only.
  big.data = Cube({LevelRef{mini_.schema->hierarchy_ptr(1), 0}}, {"m"});
  big.data.AddRow({0}, {1});
  big.data.AddRow({1}, {1});
  small.data = Cube({LevelRef{mini_.schema->hierarchy_ptr(1), 1}}, {"m"});
  small.data.AddRow({0}, {1});

  CubeQuery query;
  query.group_by = *GroupBySet::FromLevelNames(schema(), {"country"});
  query.measures = {0};
  std::vector<MaterializedView> views;
  views.push_back(std::move(big));
  views.push_back(std::move(small));
  EXPECT_EQ(PickBestView(schema(), query, views), 1);
}

TEST_F(MaterializedViewTest, PickBestNoneApplicable) {
  MaterializedView view;
  view.group_by = *GroupBySet::FromLevelNames(schema(), {"year"});
  CubeQuery query;
  query.group_by = *GroupBySet::FromLevelNames(schema(), {"product"});
  query.measures = {0};
  std::vector<MaterializedView> views;
  views.push_back(std::move(view));
  EXPECT_EQ(PickBestView(schema(), query, views), -1);
}

}  // namespace
}  // namespace assess
