#include "assess/analyzer.h"

#include <gtest/gtest.h>

#include "assess/parser.h"
#include "labeling/distribution_labeling.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest()
      : mini_(BuildMiniSales()),
        functions_(FunctionRegistry::Default()),
        labelings_(LabelingRegistry::Default()) {}

  Result<AnalyzedStatement> AnalyzeText(const std::string& text) {
    auto stmt = ParseAssessStatement(text);
    if (!stmt.ok()) return stmt.status();
    return Analyze(*stmt, *mini_.db, functions_, labelings_);
  }

  AnalyzedStatement Must(const std::string& text) {
    auto analyzed = AnalyzeText(text);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  testutil::MiniDb mini_;
  FunctionRegistry functions_;
  LabelingRegistry labelings_;
};

TEST_F(AnalyzerTest, ConstantBenchmark) {
  AnalyzedStatement a = Must(
      "with SALES by month assess sales against 1000 labels quartiles");
  EXPECT_EQ(a.type, BenchmarkType::kConstant);
  EXPECT_EQ(a.constant, 1000);
  EXPECT_EQ(a.benchmark_measure_name, "benchmark");
  EXPECT_EQ(a.measure, "sales");
  EXPECT_EQ(a.target.cube_name, "SALES");
  EXPECT_EQ(a.target.measures, std::vector<int>{1});
  // Default comparison: difference(m, constant).
  EXPECT_EQ(a.using_expr.ToString(), "difference(sales, 1000)");
}

TEST_F(AnalyzerTest, OmittedAgainstIsZeroBenchmark) {
  AnalyzedStatement a =
      Must("with SALES by month assess sales labels quartiles");
  EXPECT_EQ(a.type, BenchmarkType::kConstant);
  EXPECT_EQ(a.constant, 0);
  EXPECT_EQ(a.using_expr.ToString(), "difference(sales, 0)");
}

TEST_F(AnalyzerTest, SiblingBenchmark) {
  AnalyzedStatement a = Must(
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "labels quartiles");
  EXPECT_EQ(a.type, BenchmarkType::kSibling);
  EXPECT_EQ(a.sibling_level, "country");
  EXPECT_EQ(a.sibling_member, "Italy");
  EXPECT_EQ(a.sibling_sib, "France");
  EXPECT_EQ(a.benchmark_measure_name, "benchmark.quantity");
  EXPECT_EQ(a.join_levels, std::vector<std::string>{"product"});
  EXPECT_EQ(a.benchmark.alias, "benchmark");
  // P_B replaces Italy with France on the country predicate only.
  bool saw_france = false;
  for (const Predicate& p : a.benchmark.predicates) {
    for (const std::string& m : p.members) {
      EXPECT_NE(m, "Italy");
      if (m == "France") saw_france = true;
    }
  }
  EXPECT_TRUE(saw_france);
  // Default comparison references the benchmark measure.
  EXPECT_EQ(a.using_expr.ToString(),
            "difference(quantity, benchmark.quantity)");
}

TEST_F(AnalyzerTest, SiblingLevelMustBeInByClause) {
  auto a = AnalyzeText(
      "with SALES for country = 'Italy' by product assess quantity "
      "against country = 'France' labels quartiles");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("by clause"), std::string::npos);
}

TEST_F(AnalyzerTest, SiblingNeedsSlicePredicate) {
  auto a = AnalyzeText(
      "with SALES by product, country assess quantity "
      "against country = 'France' labels quartiles");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("for predicate"), std::string::npos);
}

TEST_F(AnalyzerTest, SiblingMemberMustDiffer) {
  auto a = AnalyzeText(
      "with SALES for country = 'Italy' by product, country assess quantity "
      "against country = 'Italy' labels quartiles");
  EXPECT_FALSE(a.ok());
}

TEST_F(AnalyzerTest, SiblingUnknownMemberFails) {
  auto a = AnalyzeText(
      "with SALES for country = 'Italy' by product, country assess quantity "
      "against country = 'Atlantis' labels quartiles");
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, PastBenchmark) {
  AnalyzedStatement a = Must(
      "with SALES for month = '1997-07', store = 'SmartMart' "
      "by month, store assess sales against past 4 labels quartiles");
  EXPECT_EQ(a.type, BenchmarkType::kPast);
  EXPECT_EQ(a.past_k, 4);
  EXPECT_EQ(a.time_level, "month");
  EXPECT_EQ(a.time_member, "1997-07");
  EXPECT_EQ(a.past_members,
            (std::vector<std::string>{"1997-03", "1997-04", "1997-05",
                                      "1997-06"}));
  EXPECT_EQ(a.join_levels, std::vector<std::string>{"store"});
  // Benchmark query: the month predicate became IN over the past members.
  bool saw_in = false;
  for (const Predicate& p : a.benchmark.predicates) {
    if (p.op == PredicateOp::kIn) {
      saw_in = true;
      EXPECT_EQ(p.members, a.past_members);
    }
  }
  EXPECT_TRUE(saw_in);
}

TEST_F(AnalyzerTest, PastNeedsTemporalSliceInBy) {
  auto a = AnalyzeText(
      "with SALES for store = 'SmartMart' by store assess sales "
      "against past 4 labels quartiles");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("temporal"), std::string::npos);
}

TEST_F(AnalyzerTest, PastWithTooFewPredecessorsFails) {
  auto a = AnalyzeText(
      "with SALES for month = '1997-04', store = 'SmartMart' "
      "by month, store assess sales against past 4 labels quartiles");
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, ExternalBenchmarkNeedsJoinableSchema) {
  // Register an external cube lacking the 'month' level: not joinable.
  auto hier = std::make_shared<Hierarchy>("Other");
  hier->AddLevel("other");
  auto schema = std::make_shared<CubeSchema>("EXT");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"target", AggOp::kSum});
  DimensionTable dim("other", hier);
  ASSERT_TRUE(mini_.db
                  ->Register("EXT", std::make_unique<BoundCube>(
                                        schema,
                                        std::vector<DimensionTable>{dim},
                                        FactTable("EXT", 1, 1)))
                  .ok());
  auto a = AnalyzeText(
      "with SALES by month assess sales against EXT.target labels quartiles");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("joinable"), std::string::npos);
}

TEST_F(AnalyzerTest, ExternalBenchmarkUnknownCubeOrMeasure) {
  EXPECT_EQ(AnalyzeText("with SALES by month assess sales against "
                        "GHOST.target labels quartiles")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, UnknownNamesAreRejected) {
  EXPECT_FALSE(
      AnalyzeText("with GHOST by month assess sales labels quartiles").ok());
  EXPECT_FALSE(
      AnalyzeText("with SALES by month assess ghost labels quartiles").ok());
  EXPECT_FALSE(
      AnalyzeText("with SALES by ghost assess sales labels quartiles").ok());
  EXPECT_FALSE(AnalyzeText("with SALES for ghost = 'x' by month assess sales "
                           "labels quartiles")
                   .ok());
  EXPECT_FALSE(AnalyzeText("with SALES by month assess sales using "
                           "frobnicate(sales) labels quartiles")
                   .ok());
  EXPECT_FALSE(AnalyzeText(
                   "with SALES by month assess sales labels mysteryScale")
                   .ok());
}

TEST_F(AnalyzerTest, UnknownPredicateMemberIsRejectedEagerly) {
  auto a = AnalyzeText(
      "with SALES for country = 'Narnia' by month assess sales "
      "labels quartiles");
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, UsingArityIsValidated) {
  auto a = AnalyzeText(
      "with SALES by month assess sales using difference(sales) "
      "labels quartiles");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("argument"), std::string::npos);
}

TEST_F(AnalyzerTest, InlineLabelsAreValidated) {
  auto a = AnalyzeText(
      "with SALES by month assess sales labels "
      "{[0, 2]: a, [1, 3]: b}");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("overlap"), std::string::npos);
}

TEST_F(AnalyzerTest, InlineLabelsBuildRangeFunction) {
  AnalyzedStatement a = Must(
      "with SALES by month assess sales labels "
      "{[-inf, 0): neg, [0, inf]: pos}");
  ASSERT_NE(a.label_function, nullptr);
  std::vector<double> values = {-1, 1};
  std::vector<std::string> labels;
  ASSERT_TRUE(a.label_function
                  ->Apply(std::span<const double>(values), &labels)
                  .ok());
  EXPECT_EQ(labels, (std::vector<std::string>{"neg", "pos"}));
}

TEST_F(AnalyzerTest, NamedLabelingResolvesFromRegistry) {
  AnalyzedStatement a =
      Must("with SALES by month assess sales labels deciles");
  EXPECT_EQ(a.label_function->name(), "deciles");
}

TEST_F(AnalyzerTest, StarFlagPropagates) {
  AnalyzedStatement a = Must(
      "with SALES for country = 'Italy' by product, country assess* quantity "
      "against country = 'France' labels quartiles");
  EXPECT_TRUE(a.star);
}

TEST_F(AnalyzerTest, ForecastOptionPropagates) {
  auto stmt = ParseAssessStatement(
      "with SALES for month = '1997-07', store = 'SmartMart' by month, store "
      "assess sales against past 2 labels quartiles");
  ASSERT_TRUE(stmt.ok());
  AnalyzerOptions options;
  options.forecast = ForecastMethod::kMovingAverage;
  auto a = Analyze(*stmt, *mini_.db, functions_, labelings_, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->forecast, ForecastMethod::kMovingAverage);
}

TEST(PredecessorMembersTest, ChronologicalWindow) {
  Hierarchy h("Date");
  h.AddLevel("month");
  // Insert out of order: predecessor computation must sort by name.
  for (const char* m : {"1997-05", "1997-03", "1997-07", "1997-04",
                        "1997-06"}) {
    h.AddMember(0, m);
  }
  auto preds = PredecessorMembers(h, 0, "1997-07", 3);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ(*preds,
            (std::vector<std::string>{"1997-04", "1997-05", "1997-06"}));
  EXPECT_FALSE(PredecessorMembers(h, 0, "1997-03", 1).ok());
  EXPECT_FALSE(PredecessorMembers(h, 0, "1997-08", 1).ok());
}

}  // namespace
}  // namespace assess
