#include "forecast/forecast.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "olap/cube.h"

namespace assess {
namespace {

TEST(LinearRegressionTest, ExactOnLinearSeries) {
  std::vector<double> series = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(LinearRegressionNext(series), 50.0);
}

TEST(LinearRegressionTest, ConstantSeriesPredictsConstant) {
  std::vector<double> series = {7, 7, 7};
  EXPECT_DOUBLE_EQ(LinearRegressionNext(series), 7.0);
}

TEST(LinearRegressionTest, DecreasingSeries) {
  std::vector<double> series = {40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(LinearRegressionNext(series), 0.0);
}

TEST(LinearRegressionTest, GapsKeepTheirTimeIndex) {
  // y = 10t with t=2 missing still fits exactly.
  std::vector<double> series = {10, kNullMeasure, 30, 40};
  EXPECT_DOUBLE_EQ(LinearRegressionNext(series), 50.0);
}

TEST(LinearRegressionTest, SinglePoint) {
  std::vector<double> series = {42};
  EXPECT_DOUBLE_EQ(LinearRegressionNext(series), 42.0);
}

TEST(LinearRegressionTest, AllNull) {
  std::vector<double> series = {kNullMeasure, kNullMeasure};
  EXPECT_TRUE(std::isnan(LinearRegressionNext(series)));
}

TEST(LinearRegressionTest, NoisyLeastSquares) {
  // Known OLS solution for {1, 2, 2, 3}: slope 0.6, intercept 0.5.
  std::vector<double> series = {1, 2, 2, 3};
  EXPECT_NEAR(LinearRegressionNext(series), 0.5 + 0.6 * 5, 1e-12);
}

TEST(MovingAverageTest, Mean) {
  std::vector<double> series = {10, 20, 30};
  EXPECT_DOUBLE_EQ(MovingAverageNext(series), 20.0);
}

TEST(MovingAverageTest, SkipsNulls) {
  std::vector<double> series = {10, kNullMeasure, 30};
  EXPECT_DOUBLE_EQ(MovingAverageNext(series), 20.0);
}

TEST(MovingAverageTest, AllNull) {
  std::vector<double> series = {kNullMeasure};
  EXPECT_TRUE(std::isnan(MovingAverageNext(series)));
}

TEST(ExponentialSmoothingTest, WeightsRecentValues) {
  std::vector<double> series = {0, 0, 100};
  // level = 0 -> 0 -> 0.5*100 + 0.5*0 = 50 with alpha = 0.5.
  EXPECT_DOUBLE_EQ(ExponentialSmoothingNext(series, 0.5), 50.0);
}

TEST(ExponentialSmoothingTest, AlphaOneTracksLast) {
  std::vector<double> series = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ExponentialSmoothingNext(series, 1.0), 3.0);
}

TEST(ExponentialSmoothingTest, AllNull) {
  std::vector<double> series = {kNullMeasure, kNullMeasure};
  EXPECT_TRUE(std::isnan(ExponentialSmoothingNext(series, 0.5)));
}

TEST(ForecastDispatchTest, MethodsRoundTripNames) {
  for (ForecastMethod method :
       {ForecastMethod::kLinearRegression, ForecastMethod::kMovingAverage,
        ForecastMethod::kExponentialSmoothing}) {
    auto parsed = ForecastMethodFromString(ForecastMethodToString(method));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, method);
  }
  EXPECT_FALSE(ForecastMethodFromString("prophet").ok());
  EXPECT_TRUE(ForecastMethodFromString("linear_regression").ok());
}

TEST(ForecastDispatchTest, DispatchMatchesDirectCalls) {
  std::vector<double> series = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(
      ForecastNext(ForecastMethod::kLinearRegression, series), 50.0);
  EXPECT_DOUBLE_EQ(ForecastNext(ForecastMethod::kMovingAverage, series),
                   25.0);
  EXPECT_DOUBLE_EQ(
      ForecastNext(ForecastMethod::kExponentialSmoothing, series),
      ExponentialSmoothingNext(series, 0.5));
}

}  // namespace
}  // namespace assess
