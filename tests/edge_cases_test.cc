// Deeper edge coverage across the stack: statement robustness (fuzzed
// inputs must fail cleanly, never crash), boundary conditions in the
// engine, past benchmarks across year boundaries, assess* null handling in
// every plan, and rendering of null cells.

#include <gtest/gtest.h>

#include <cmath>

#include "assess/parser.h"
#include "assess/session.h"
#include "common/rng.h"
#include "labeling/distribution_labeling.h"
#include "labeling/kmeans_labeling.h"
#include "ssb/sales_generator.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;
using ::assess::testutil::K;
using ::assess::testutil::LabelMap;

// --- Parser robustness --------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, MutatedStatementsNeverCrash) {
  const std::string base =
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using percOfTotal(difference(quantity, benchmark.quantity), quantity) "
      "labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}";
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // delete a span
          mutated.erase(pos, 1 + rng.Uniform(5));
          break;
        case 1:  // insert punctuation/noise
          mutated.insert(pos, 1, "(){}[],:=*.'x0 "[rng.Uniform(15)]);
          break;
        case 2:  // overwrite a char
          if (!mutated.empty()) {
            mutated[pos % mutated.size()] =
                static_cast<char>(32 + rng.Uniform(95));
          }
          break;
      }
    }
    // Must return ok or a clean error; any crash fails the test harness.
    Result<AssessStatement> result = ParseAssessStatement(mutated);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(ParserFuzzTest, MutatedStatementsAnalyzeCleanly) {
  // Statements that parse must analyze without crashing, too.
  testutil::MiniDb mini = BuildMiniSales();
  FunctionRegistry functions = FunctionRegistry::Default();
  LabelingRegistry labelings = LabelingRegistry::Default();
  const std::string base =
      "with SALES for month = '1997-07' by month, store "
      "assess sales against past 4 labels quartiles";
  Rng rng(99);
  int analyzed_ok = 0;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = base;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
    auto stmt = ParseAssessStatement(mutated);
    if (!stmt.ok()) continue;
    auto analyzed = Analyze(*stmt, *mini.db, functions, labelings);
    if (analyzed.ok()) ++analyzed_ok;
  }
  // The unmutated form is among the survivors in expectation; just require
  // no crash and at least some mutated statements being rejected cleanly.
  EXPECT_LT(analyzed_ok, 300);
}

// --- Engine boundaries ----------------------------------------------------

class EdgeCaseTest : public ::testing::Test {
 protected:
  EdgeCaseTest() : mini_(BuildMiniSales()), session_(mini_.db.get()) {}
  testutil::MiniDb mini_;
  AssessSession session_;
};

TEST_F(EdgeCaseTest, PredicateFinerThanGroupLevel) {
  // Group by month while slicing a single date: predicates finer than the
  // group-by level must apply before aggregation.
  StarQueryEngine engine(mini_.db.get());
  auto q = CubeQuery::Make(*mini_.schema, "SALES", {"month"},
                           {{0, 0, PredicateOp::kEquals, {"1997-07-01"}}},
                           {"quantity"});
  ASSERT_TRUE(q.ok());
  Cube cube = *engine.Execute(*q);
  auto cells = CellMap(cube, "quantity");
  ASSERT_EQ(cells.size(), 1u);
  // 1997-07-01 facts: Apple 60 + Pear 90 + Lemon 30 + Apple(FR) 150 +
  // Lemon(FR) 20 = 350.
  EXPECT_EQ(cells[K("1997-07")], 350);
}

TEST_F(EdgeCaseTest, DuplicatePredicatesIntersect) {
  StarQueryEngine engine(mini_.db.get());
  auto q = CubeQuery::Make(*mini_.schema, "SALES", {"product"},
                           {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
                            {1, 0, PredicateOp::kIn, {"Apple", "milk"}}},
                           {"quantity"});
  ASSERT_TRUE(q.ok());
  Cube cube = *engine.Execute(*q);
  EXPECT_EQ(cube.NumRows(), 1);  // only Apple survives both
}

TEST_F(EdgeCaseTest, ContradictoryPredicatesYieldEmptyResult) {
  auto result = session_.Query(
      "with SALES for country = 'Italy', store = 'PetitPrix' "
      "by product assess quantity labels quartiles");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cube.NumRows(), 0);
}

// --- Past benchmarks across boundaries ------------------------------------

TEST(PastBoundaryTest, WindowsCrossYearBoundaries) {
  SalesConfig config;
  config.facts = 50000;
  auto db = std::move(BuildSalesDatabase(config)).value();
  AssessSession session(db.get());
  // February 1997 against the previous four months: 1996-10..1997-01.
  auto analyzed = session.Prepare(
      "with SALES for month = '1997-02' by month, store "
      "assess storeSales against past 4 labels quartiles");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed->past_members,
            (std::vector<std::string>{"1996-10", "1996-11", "1996-12",
                                      "1997-01"}));
  for (PlanKind plan : FeasiblePlans(*analyzed)) {
    auto result = session.Query(analyzed->stmt.original_text, plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->cube.NumRows(), 0);
  }
}

// --- assess* null handling per plan ----------------------------------------

TEST_F(EdgeCaseTest, StarSiblingKeepsUnmatchedAcrossPlans) {
  // Add a product sold only in Italy so the France benchmark misses it.
  // The fixture has none, so slice by date instead: 1997-07-02 has Apple
  // (Italy) and Pear (France) only.
  const char* star =
      "with SALES for date = '1997-07-02', country = 'Italy' "
      "by product, country, date assess* quantity "
      "against country = 'France' "
      "using difference(quantity, benchmark.quantity) "
      "labels {[-inf, inf]: matched}";
  auto np = session_.Query(star, PlanKind::kNP);
  ASSERT_TRUE(np.ok()) << np.status().ToString();
  ASSERT_EQ(np->cube.NumRows(), 1);  // Apple Italy, no France match
  // Axes follow schema hierarchy order: date, product, country.
  auto np_labels = LabelMap(np->cube);
  EXPECT_EQ(np_labels.at(K("1997-07-02", "Apple", "Italy")), "");
  auto jop = session_.Query(star, PlanKind::kJOP);
  auto pop = session_.Query(star, PlanKind::kPOP);
  ASSERT_TRUE(jop.ok() && pop.ok());
  EXPECT_EQ(LabelMap(jop->cube), np_labels);
  EXPECT_EQ(LabelMap(pop->cube), np_labels);
  // The null benchmark shows as "null" in rendering and empty in CSV.
  EXPECT_NE(np->ToString().find("null"), std::string::npos);
}

TEST_F(EdgeCaseTest, StarPastWithNoHistory) {
  // 1997-03 is the earliest month in the fixture: past 1 fails analysis
  // (no predecessors exist at all).
  auto none = session_.Prepare(
      "with SALES for month = '1997-03' by month, store "
      "assess* sales against past 1 labels quartiles");
  EXPECT_FALSE(none.ok());
  // 1997-04 has exactly one predecessor.
  auto one = session_.Query(
      "with SALES for month = '1997-04' by month, store "
      "assess* sales against past 1 using ratio(sales, benchmark.sales) "
      "labels {[-inf, inf]: any}");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one->cube.NumRows(), 2);
}

// --- Quantile and k-means boundaries ---------------------------------------

TEST(LabelingEdgeTest, QuantilesWithFewerValuesThanGroups) {
  auto fn = *QuantileLabeling::Make(4);
  std::vector<double> values = {1.0, 2.0};
  std::vector<std::string> labels;
  ASSERT_TRUE(fn.Apply(std::span<const double>(values), &labels).ok());
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[0], "");
}

TEST(LabelingEdgeTest, KMeansIsDeterministic) {
  auto fn = *KMeansLabeling::Make(3);
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextDouble() * 10);
  std::vector<std::string> first;
  std::vector<std::string> second;
  ASSERT_TRUE(fn.Apply(std::span<const double>(values), &first).ok());
  ASSERT_TRUE(fn.Apply(std::span<const double>(values), &second).ok());
  EXPECT_EQ(first, second);
}

// --- Multi-measure concat join ----------------------------------------------

TEST_F(EdgeCaseTest, ConcatJoinCarriesMultipleMeasuresPerSlot) {
  StarQueryEngine engine(mini_.db.get());
  auto target = CubeQuery::Make(*mini_.schema, "SALES", {"month", "store"},
                                {{0, 1, PredicateOp::kEquals, {"1997-07"}}},
                                {"quantity", "sales"});
  auto history = CubeQuery::Make(*mini_.schema, "SALES", {"month", "store"},
                                 {{0, 1, PredicateOp::kIn,
                                   {"1997-05", "1997-06"}}},
                                 {"quantity", "sales"});
  ASSERT_TRUE(target.ok() && history.ok());
  Cube joined = *engine.ExecuteConcatJoined(
      *target, *history, {"store"}, "month", 2,
      {{"q1", "s1"}, {"q2", "s2"}}, true);
  ASSERT_EQ(joined.NumRows(), 2);  // SmartMart + PetitPrix
  auto s1 = CellMap(joined, "s1");
  auto s2 = CellMap(joined, "s2");
  EXPECT_EQ(s1[K("1997-07", "SmartMart")], 30);  // May
  EXPECT_EQ(s2[K("1997-07", "SmartMart")], 40);  // June
}

// --- Statement-level rendering ----------------------------------------------

TEST_F(EdgeCaseTest, ExplainCoversEveryFeasiblePlanOfEveryType) {
  const char* statements[] = {
      "with SALES by month assess sales against 10 labels quartiles",
      "with SALES for country = 'Italy' by product, country assess quantity "
      "against country = 'France' labels quartiles",
      "with SALES for month = '1997-07' by month, store assess sales "
      "against past 2 labels quartiles",
      "with SALES for product = 'Apple' by product assess quantity "
      "against type labels quartiles",
  };
  for (const char* text : statements) {
    auto analyzed = session_.Prepare(text);
    ASSERT_TRUE(analyzed.ok()) << text;
    for (PlanKind plan : FeasiblePlans(*analyzed)) {
      std::string explained = ExplainPlan(*analyzed, plan);
      EXPECT_NE(explained.find("compare:"), std::string::npos) << text;
      EXPECT_NE(explained.find("label:"), std::string::npos) << text;
      EXPECT_NE(explained.find(PlanKindToString(plan)), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace assess
