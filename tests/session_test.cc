#include "assess/session.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;
using ::assess::testutil::K;
using ::assess::testutil::LabelMap;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : mini_(BuildMiniSales()), session_(mini_.db.get()) {}

  testutil::MiniDb mini_;
  AssessSession session_;
};

TEST_F(SessionTest, BestPlanPrefersPopForSibling) {
  auto r = session_.Query(
      "with SALES for country = 'Italy' by product, country assess quantity "
      "against country = 'France' labels quartiles");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->plan, PlanKind::kPOP);
}

TEST_F(SessionTest, BestPlanPrefersJopForExternalAndNpForConstant) {
  auto constant = session_.Query(
      "with SALES by month assess sales against 10 labels quartiles");
  ASSERT_TRUE(constant.ok());
  EXPECT_EQ(constant->plan, PlanKind::kNP);
}

TEST_F(SessionTest, ExplainListsSteps) {
  auto text = session_.Explain(
      "with SALES for country = 'Italy' by product, country assess quantity "
      "against country = 'France' labels quartiles",
      PlanKind::kPOP);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("get+pivot (P3)"), std::string::npos);
  EXPECT_NE(text->find("label:"), std::string::npos);
  auto infeasible = session_.Explain(
      "with SALES by month assess sales labels quartiles", PlanKind::kPOP);
  EXPECT_EQ(infeasible.status().code(), StatusCode::kNotSupported);
}

TEST_F(SessionTest, ParseErrorsPropagate) {
  auto r = session_.Query("select * from sales");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// Example 3.3 of the paper: a user-declared 5stars labeling applied to the
// min-max-normalized difference between sales by gender and an external
// benchmark. Our SALES cube has no gender, so the scenario is rebuilt on
// stores: target {SmartMart 145, PetitPrix 68}, benchmark
// {SmartMart 165, PetitPrix 63}, differences {-20, +5}; minMaxNorm maps
// them to {0, 1}, labeled '***'... i.e. the lowest and highest star bands
// applicable under the normalized-domain variant of the paper's lambda.
TEST_F(SessionTest, UserRegisteredLabelingEndToEnd) {
  // Register the benchmark cube.
  auto plan_schema = std::make_shared<CubeSchema>("TARGETS");
  for (int h = 0; h < mini_.schema->hierarchy_count(); ++h) {
    plan_schema->AddHierarchy(mini_.schema->hierarchy_ptr(h));
  }
  plan_schema->AddMeasure({"goal", AggOp::kSum});
  const BoundCube* sales = *mini_.db->Find("SALES");
  std::vector<DimensionTable> dims;
  for (int h = 0; h < mini_.schema->hierarchy_count(); ++h) {
    dims.push_back(sales->dimension(h));
  }
  FactTable facts("TARGETS", 3, 1);
  facts.AddRow({0, 3, 0}, {165.0});  // SmartMart goal
  facts.AddRow({0, 3, 1}, {63.0});   // PetitPrix goal
  ASSERT_TRUE(mini_.db
                  ->Register("TARGETS", std::make_unique<BoundCube>(
                                            plan_schema, std::move(dims),
                                            std::move(facts)))
                  .ok());

  // Register the named labeling (Example 3.3's lambda over [0, 1]).
  auto stars = RangeLabeling::Make({{0.0, 0.2, true, true, "*"},
                                    {0.2, 0.4, false, true, "**"},
                                    {0.4, 0.6, false, true, "***"},
                                    {0.6, 0.8, false, true, "****"},
                                    {0.8, 1.0, false, true, "*****"}},
                                   "5stars");
  ASSERT_TRUE(stars.ok());
  ASSERT_TRUE(session_.labelings()
                  ->Register(std::make_shared<RangeLabeling>(
                      std::move(*stars)))
                  .ok());

  auto r = session_.Query(
      "with SALES by store assess sales against TARGETS.goal "
      "using minMaxNorm(difference(sales, benchmark.goal)) labels 5stars");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto labels = LabelMap(r->cube);
  EXPECT_EQ(labels[K("SmartMart")], "*");    // normalized 0
  EXPECT_EQ(labels[K("PetitPrix")], "*****");  // normalized 1
}

TEST_F(SessionTest, UserRegisteredFunctionEndToEnd) {
  FunctionDef shortfall;
  shortfall.name = "shortfall";
  shortfall.kind = FunctionKind::kCell;
  shortfall.arity = 2;
  shortfall.cell = [](std::span<const double> a) {
    return a[0] < a[1] ? a[1] - a[0] : 0.0;
  };
  ASSERT_TRUE(session_.functions()->Register(std::move(shortfall)).ok());
  auto r = session_.Query(
      "with SALES by store assess sales against 100 "
      "using shortfall(sales, 100) "
      "labels {[0, 0]: met, (0, inf): missed}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto labels = LabelMap(r->cube);
  EXPECT_EQ(labels[K("SmartMart")], "met");   // 145 >= 100
  EXPECT_EQ(labels[K("PetitPrix")], "missed");  // 68 < 100
}

TEST_F(SessionTest, PrepareExposesAnalyzedStatement) {
  auto analyzed = session_.Prepare(
      "with SALES for month = '1997-07' by month, store assess sales "
      "against past 2 labels quartiles");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed->type, BenchmarkType::kPast);
  EXPECT_EQ(analyzed->past_members,
            (std::vector<std::string>{"1997-05", "1997-06"}));
}

}  // namespace
}  // namespace assess
