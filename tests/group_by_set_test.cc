#include "olap/group_by_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

class GroupBySetTest : public ::testing::Test {
 protected:
  GroupBySetTest() : mini_(BuildMiniSales()) {}
  const CubeSchema& schema() const { return *mini_.schema; }
  testutil::MiniDb mini_;
};

TEST_F(GroupBySetTest, FromLevelNamesResolves) {
  auto gbs = GroupBySet::FromLevelNames(schema(), {"product", "country"});
  ASSERT_TRUE(gbs.ok());
  EXPECT_EQ(gbs->Arity(), 2);
  EXPECT_FALSE(gbs->HasHierarchy(0));  // Date fully aggregated
  ASSERT_TRUE(gbs->HasHierarchy(1));
  EXPECT_EQ(gbs->LevelOf(1), 0);  // product is the finest Product level
  ASSERT_TRUE(gbs->HasHierarchy(2));
  EXPECT_EQ(gbs->LevelOf(2), 1);  // country
}

TEST_F(GroupBySetTest, RejectsUnknownLevel) {
  EXPECT_FALSE(GroupBySet::FromLevelNames(schema(), {"warehouse"}).ok());
}

TEST_F(GroupBySetTest, RejectsTwoLevelsOfOneHierarchy) {
  auto gbs = GroupBySet::FromLevelNames(schema(), {"store", "country"});
  ASSERT_FALSE(gbs.ok());
  EXPECT_EQ(gbs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GroupBySetTest, EmptyGroupBySetIsApexCube) {
  auto gbs = GroupBySet::FromLevelNames(schema(), {});
  ASSERT_TRUE(gbs.ok());
  EXPECT_EQ(gbs->Arity(), 0);
}

TEST_F(GroupBySetTest, RollsUpToIsReflexive) {
  auto g = *GroupBySet::FromLevelNames(schema(), {"product", "country"});
  EXPECT_TRUE(g.RollsUpTo(g, schema()));
}

TEST_F(GroupBySetTest, FinerRollsUpToCoarser) {
  auto fine = *GroupBySet::FromLevelNames(schema(), {"date", "product"});
  auto coarse = *GroupBySet::FromLevelNames(schema(), {"month"});
  EXPECT_TRUE(fine.RollsUpTo(coarse, schema()));
  EXPECT_FALSE(coarse.RollsUpTo(fine, schema()));
}

TEST_F(GroupBySetTest, IncomparableSetsDoNotRollUp) {
  auto a = *GroupBySet::FromLevelNames(schema(), {"month"});
  auto b = *GroupBySet::FromLevelNames(schema(), {"product"});
  EXPECT_FALSE(a.RollsUpTo(b, schema()));
  EXPECT_FALSE(b.RollsUpTo(a, schema()));
}

TEST_F(GroupBySetTest, TopGroupBySetRollsUpToEverything) {
  auto top =
      *GroupBySet::FromLevelNames(schema(), {"date", "product", "store"});
  for (const auto& levels :
       std::vector<std::vector<std::string>>{{"month", "type"},
                                             {"year"},
                                             {"country"},
                                             {},
                                             {"date", "product", "store"}}) {
    auto other = *GroupBySet::FromLevelNames(schema(), levels);
    EXPECT_TRUE(top.RollsUpTo(other, schema()));
  }
}

TEST_F(GroupBySetTest, ToStringListsLevels) {
  auto g = *GroupBySet::FromLevelNames(schema(), {"product", "country"});
  EXPECT_EQ(g.ToString(schema()), "<product, country>");
}

TEST_F(GroupBySetTest, Equality) {
  auto a = *GroupBySet::FromLevelNames(schema(), {"product"});
  auto b = *GroupBySet::FromLevelNames(schema(), {"product"});
  auto c = *GroupBySet::FromLevelNames(schema(), {"type"});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST_F(GroupBySetTest, SetAndClearLevel) {
  GroupBySet g(3);
  EXPECT_EQ(g.Arity(), 0);
  g.SetLevel(1, 0);
  EXPECT_TRUE(g.HasHierarchy(1));
  g.ClearLevel(1);
  EXPECT_FALSE(g.HasHierarchy(1));
}

}  // namespace
}  // namespace assess
