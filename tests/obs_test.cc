// Tests for the observability layer (src/obs/): the metrics registry
// (counters, gauges, histograms, Prometheus exposition), the span-tree
// tracer (nesting, cross-thread propagation through the TaskPool, golden
// serializations under a fake clock, deterministic sampling), and the
// StepTimings-from-trace view the executor derives. The concurrent cases
// double as the TSan targets for the lock-free metric paths (see
// .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "assess/result_set.h"
#include "assess/session.h"
#include "common/task_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);

  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST(Metrics, HistogramBucketEdgesAreInclusive) {
  Histogram hist({1.0, 2.0, 4.0});
  hist.Observe(1.0);  // == first edge: lands in bucket 0
  hist.Observe(2.0);  // == second edge: lands in bucket 1
  hist.Observe(3.0);  // in (2, 4]: bucket 2
  hist.Observe(100.0);  // past the last edge: +Inf bucket
  std::vector<uint64_t> buckets = hist.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 106.0);
}

TEST(Metrics, HistogramQuantilesAreMonotoneAndPositive) {
  Histogram hist(Histogram::LatencyBoundsMs());
  for (int i = 1; i <= 1000; ++i) hist.Observe(i * 0.1);  // 0.1 .. 100 ms
  double p50 = hist.Quantile(0.50);
  double p90 = hist.Quantile(0.90);
  double p99 = hist.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Bucket interpolation keeps the estimate within a doubling bucket of the
  // true quantile.
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 100.0);
  // +Inf observations clamp to the last finite bound.
  Histogram tiny({1.0});
  tiny.Observe(50.0);
  EXPECT_DOUBLE_EQ(tiny.Quantile(0.99), 1.0);
  // Empty histogram: all quantiles zero.
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(Metrics, RegistryCreatesOnceAndRejectsKindMismatch) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter* c1 = registry.GetCounter("obs_test_counter", "a test counter");
  Counter* c2 = registry.GetCounter("obs_test_counter");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);
  // Same name, different kind: refused.
  EXPECT_EQ(registry.GetGauge("obs_test_counter"), nullptr);
  EXPECT_EQ(registry.GetHistogram("obs_test_counter", {1.0}), nullptr);

  c1->Inc(3);
  Histogram* h = registry.GetHistogram("obs_test_hist", {1.0, 2.0}, "a hist");
  ASSERT_NE(h, nullptr);
  h->Observe(1.5);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP obs_test_counter a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_counter counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_hist_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_hist_count 1"), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesAreExactUnderContention) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  Counter counter;
  Gauge gauge;
  Histogram hist(Histogram::LatencyBoundsMs());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Inc();
        gauge.Add(t % 2 == 0 ? 1 : -1);
        hist.Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(hist.Count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t b : hist.BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, hist.Count());
}

// ---------------------------------------------------------------------------
// Tracer: the TraceContext API works in every build; Span-based recording
// requires ASSESS_TRACING=ON and skips otherwise.
// ---------------------------------------------------------------------------

/// A deterministic clock: every reading advances 1000 ns.
struct FakeClock {
  int64_t t = 0;
  int64_t operator()() { return t += 1000; }
};

TEST(Trace, GoldenJsonAndChromeAndTreeUnderFakeClock) {
  TraceContext trace;
  trace.SetClockForTest(FakeClock{});
  // Built through the direct API so this golden holds in OFF builds too.
  auto root = trace.StartSpan("root", TraceContext::kNoSpan);   // start 1000
  trace.AddInt(root, "rows", 7);
  auto child = trace.StartSpan("child", root);                  // start 2000
  trace.AddString(child, "mode", "scan");
  trace.EndSpan(child);                                         // end 3000
  trace.EndSpan(root);                                          // end 4000

  EXPECT_EQ(trace.ToJson(),
            "{\"trace\":{\"spans\":["
            "{\"id\":0,\"parent\":-1,\"name\":\"root\",\"thread\":0,"
            "\"start_ns\":1000,\"duration_ns\":3000,\"attrs\":{\"rows\":7}},"
            "{\"id\":1,\"parent\":0,\"name\":\"child\",\"thread\":0,"
            "\"start_ns\":2000,\"duration_ns\":1000,"
            "\"attrs\":{\"mode\":\"scan\"}}]}}");
  EXPECT_EQ(trace.ToChromeTrace(),
            "{\"traceEvents\":["
            "{\"name\":\"root\",\"ph\":\"X\",\"ts\":1.000,\"dur\":3.000,"
            "\"pid\":1,\"tid\":0,\"args\":{\"rows\":7}},"
            "{\"name\":\"child\",\"ph\":\"X\",\"ts\":2.000,\"dur\":1.000,"
            "\"pid\":1,\"tid\":0,\"args\":{\"mode\":\"scan\"}}]}");
  EXPECT_EQ(trace.ToTreeString(),
            "root 0.003ms {rows=7}\n"
            "  child 0.001ms {mode=scan}\n");
}

TEST(Trace, OpenSpansRenderAsOpenAndSkipChromeEvents) {
  TraceContext trace;
  trace.SetClockForTest(FakeClock{});
  auto open = trace.StartSpan("stuck", TraceContext::kNoSpan);
  (void)open;  // never ended
  EXPECT_NE(trace.ToTreeString().find("stuck (open)"), std::string::npos);
  EXPECT_EQ(trace.ToChromeTrace(), "{\"traceEvents\":[]}");
  EXPECT_NE(trace.ToJson().find("\"duration_ns\":-1"), std::string::npos);
}

TEST(Trace, SpanSecondsSumsOnlyTheRequestedSubtree) {
  TraceContext trace;
  trace.SetClockForTest(FakeClock{});
  auto a = trace.StartSpan("exec", TraceContext::kNoSpan);  // 1000
  auto a1 = trace.StartSpan("get_c", a);                    // 2000
  trace.EndSpan(a1);                                        // 3000 -> 1000ns
  trace.EndSpan(a);                                         // 4000
  auto b = trace.StartSpan("exec", TraceContext::kNoSpan);  // 5000
  auto b1 = trace.StartSpan("get_c", b);                    // 6000
  trace.EndSpan(b1);                                        // 7000 -> 1000ns
  trace.EndSpan(b);                                         // 8000

  EXPECT_DOUBLE_EQ(trace.SpanSeconds("get_c"), 2000e-9);
  EXPECT_DOUBLE_EQ(trace.SpanSeconds("get_c", a), 1000e-9);
  EXPECT_DOUBLE_EQ(trace.SpanSeconds("get_c", b), 1000e-9);
  EXPECT_DOUBLE_EQ(trace.SpanSeconds("absent"), 0.0);
}

TEST(Trace, SpansNestAutomaticallyUnderTheThreadScope) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "needs ASSESS_TRACING=ON";
  TraceContext trace;
  {
    TraceContext::Scope scope(&trace);
    Span outer("outer");
    {
      Span inner("inner");
      Span innermost("innermost");
      (void)innermost;
    }
    Span sibling("sibling");
    (void)sibling;
  }
  std::vector<SpanNode> nodes = trace.Snapshot();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].name, "outer");
  EXPECT_EQ(nodes[0].parent, TraceContext::kNoSpan);
  EXPECT_EQ(nodes[1].name, "inner");
  EXPECT_EQ(nodes[1].parent, nodes[0].id);
  EXPECT_EQ(nodes[2].name, "innermost");
  EXPECT_EQ(nodes[2].parent, nodes[1].id);
  EXPECT_EQ(nodes[3].name, "sibling");
  EXPECT_EQ(nodes[3].parent, nodes[0].id);
  for (const SpanNode& node : nodes) EXPECT_GE(node.duration_ns, 0);
}

TEST(Trace, NoInstalledTraceMeansNoRecordingAnywhere) {
  Span orphan("orphan");
  EXPECT_FALSE(orphan.active());
  EXPECT_EQ(orphan.context(), nullptr);
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

TEST(Trace, PoolWorkersParentTheirSpansUnderTheSubmitter) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "needs ASSESS_TRACING=ON";
  TaskPool pool(2);
  TraceContext trace;
  TraceContext::SpanId submit_id = TraceContext::kNoSpan;
  {
    TraceContext::Scope scope(&trace);
    Span submit("submit");
    submit_id = submit.id();
    std::atomic<int> ran{0};
    Status status = pool.RunMorsels(16, 2, [&](int64_t) {
      ran.fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(ran.load(), 16);
  }
  // Every pool.drain span — whether drained by the submitting thread or by
  // a pool worker — parents under the submitting span. At least one exists
  // on any host (the submitter always participates); how many is up to the
  // scheduler, so no worker-count assertion.
  int drains = 0;
  int64_t morsels = 0;
  for (const SpanNode& node : trace.Snapshot()) {
    if (node.name != "pool.drain") continue;
    ++drains;
    EXPECT_EQ(node.parent, submit_id);
    for (const TraceAttr& attr : node.attrs) {
      if (attr.key == "morsels") morsels += attr.int_value;
    }
  }
  EXPECT_GE(drains, 1);
  EXPECT_EQ(morsels, 16);
}

TEST(Trace, SamplerIsDeterministicUnderAFixedSeed) {
  TraceSampler a(0.5, 42), b(0.5, 42), c(0.5, 43);
  std::vector<bool> seq_a, seq_b, seq_c;
  int sampled = 0;
  for (int i = 0; i < 200; ++i) {
    seq_a.push_back(a.Sample());
    seq_b.push_back(b.Sample());
    seq_c.push_back(c.Sample());
    if (seq_a.back()) ++sampled;
  }
  EXPECT_EQ(seq_a, seq_b);    // same seed: identical decisions
  EXPECT_NE(seq_a, seq_c);    // different seed: different sequence
  EXPECT_GT(sampled, 50);     // rate 0.5 +- a wide tolerance
  EXPECT_LT(sampled, 150);
  // Degenerate rates never consult the RNG.
  TraceSampler all(1.0, 1), none(0.0, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(all.Sample());
    EXPECT_FALSE(none.Sample());
  }
}

// ---------------------------------------------------------------------------
// StepTimings as a trace view
// ---------------------------------------------------------------------------

TEST(TraceView, TracedQueryDerivesStepTimingsFromItsSpans) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "needs ASSESS_TRACING=ON";
  testutil::MiniDb mini = BuildMiniSales();
  AssessSession session(mini.db.get());
  const char* statement =
      "with SALES by month assess sales against 10 labels quartiles";

  TraceContext trace;
  Result<AssessResult> result = [&] {
    TraceContext::Scope scope(&trace);
    return session.Query(statement);
  }();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(trace.span_count(), 0u);

  // The executor filled result->timings from the trace; recomputing the
  // view over the whole trace (one query executed, so the whole trace is
  // that query) must agree exactly.
  StepTimings view = StepTimingsFromTrace(trace);
  EXPECT_DOUBLE_EQ(result->timings.get_c, view.get_c);
  EXPECT_DOUBLE_EQ(result->timings.get_b, view.get_b);
  EXPECT_DOUBLE_EQ(result->timings.get_cb, view.get_cb);
  EXPECT_DOUBLE_EQ(result->timings.transform, view.transform);
  EXPECT_DOUBLE_EQ(result->timings.join, view.join);
  EXPECT_DOUBLE_EQ(result->timings.compare, view.compare);
  EXPECT_DOUBLE_EQ(result->timings.label, view.label);
  EXPECT_GT(result->timings.Total(), 0.0);

  // The trace carries the expected structural spans.
  EXPECT_GT(trace.SpanSeconds("execute"), 0.0);
  EXPECT_GT(trace.SpanSeconds("engine.get"), 0.0);
}

TEST(TraceView, UntracedQueryStillFillsStepTimings) {
  testutil::MiniDb mini = BuildMiniSales();
  AssessSession session(mini.db.get());
  auto result = session.Query(
      "with SALES by month assess sales against 10 labels quartiles");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Without a trace the executor's stopwatches fill the timings directly.
  EXPECT_GT(result->timings.Total(), 0.0);
}

}  // namespace
}  // namespace assess
