// Multi-query optimization tests: the shared-scan engine primitive is
// bit-identical to solo execution, the server's micro-batch collector
// produces the same answers batched as unbatched under a concurrent mixed
// workload (the TSan target for the MQO paths), \analyze reports shared
// scans, graceful drain flushes a pending window, and an injected batch
// failure poisons only its own group.

#include "server/mqo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "assess/session.h"
#include "client/assess_client.h"
#include "common/failpoint.h"
#include "olap/cube_query.h"
#include "server/assessd.h"
#include "server/protocol.h"
#include "ssb/sales_generator.h"
#include "storage/star_query_engine.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

// ---------------------------------------------------------------------------
// Engine-level shared-scan tests over the generated SALES database.
// ---------------------------------------------------------------------------

/// Cell map keyed by coordinate with the measure's raw bits, so "equal"
/// means bit-identical doubles, not approximately-equal ones.
std::map<std::vector<std::string>, uint64_t> BitMap(const Cube& cube,
                                                    int measure) {
  std::map<std::vector<std::string>, uint64_t> out;
  for (int64_t r = 0; r < cube.NumRows(); ++r) {
    std::vector<std::string> key;
    for (int l = 0; l < cube.level_count(); ++l) {
      key.push_back(cube.CoordName(r, l));
    }
    double v = cube.MeasureAt(r, measure);
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    out[std::move(key)] = bits;
  }
  return out;
}

class SharedScanTest : public ::testing::Test {
 protected:
  SharedScanTest() {
    SalesConfig config;
    config.facts = 200000;
    config.seed = 11;
    auto db = BuildSalesDatabase(config);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    auto bound = db_->Find("SALES");
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    sales_ = *bound;
  }

  CubeQuery Query(const std::vector<std::string>& by,
                  std::vector<Predicate> predicates,
                  const std::vector<std::string>& measures) {
    auto q = CubeQuery::Make(sales_->schema(), "SALES", by,
                             std::move(predicates), measures);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(*q);
  }

  /// The first `n` country member names of the Store hierarchy — a shared
  /// selection every query in a batch slices on.
  std::vector<std::string> Countries(int n) {
    const Hierarchy& store = sales_->schema().hierarchy(3);
    n = std::min(n, store.LevelCardinality(2));
    std::vector<std::string> out;
    for (int id = 0; id < n; ++id) out.push_back(store.MemberName(2, id));
    return out;
  }

  /// One correlated batch: same selection, five different group-by sets and
  /// measure subsets (integer-valued quantity and non-integer store
  /// measures both represented).
  std::vector<CubeQuery> CorrelatedBatch() {
    std::vector<Predicate> preds{
        {3, 2, PredicateOp::kIn, Countries(3)}};
    return {
        Query({"month"}, preds, {"quantity"}),
        Query({"product"}, preds, {"storeSales"}),
        Query({"month", "country"}, preds, {"quantity", "storeCost"}),
        Query({"year"}, preds, {"storeSales", "quantity"}),
        Query({"country"}, preds, {"quantity", "storeSales", "storeCost"}),
    };
  }

  std::unique_ptr<StarDatabase> db_;
  const BoundCube* sales_ = nullptr;
};

TEST_F(SharedScanTest, BitIdenticalToSoloExecute) {
  std::vector<CubeQuery> queries = CorrelatedBatch();

  EngineOptions options;
  options.use_views = false;
  options.threads = 4;
  options.use_result_cache = true;
  StarQueryEngine shared(db_.get(), options);
  auto results = shared.ExecuteSharedScan(queries, 0);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), queries.size());

  // The reference: each query alone, serial, uncached, through the normal
  // fact-table scan path.
  StarQueryEngine solo(db_.get(), /*use_views=*/false, /*threads=*/1);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = solo.Execute(queries[i]);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    const Cube& lhs = *expected;
    const Cube& rhs = (*results)[i];
    ASSERT_EQ(lhs.NumRows(), rhs.NumRows()) << "query " << i;
    ASSERT_EQ(lhs.measure_count(), rhs.measure_count()) << "query " << i;
    for (int m = 0; m < lhs.measure_count(); ++m) {
      EXPECT_EQ(lhs.measure_name(m), rhs.measure_name(m));
      EXPECT_EQ(BitMap(lhs, m), BitMap(rhs, m))
          << "query " << i << " measure " << lhs.measure_name(m);
    }
  }
}

TEST_F(SharedScanTest, SharedScanSeedsTheResultCache) {
  std::vector<CubeQuery> queries = CorrelatedBatch();
  EngineOptions options;
  options.use_views = false;
  options.threads = 2;
  options.use_result_cache = true;
  StarQueryEngine engine(db_.get(), options);
  auto results = engine.ExecuteSharedScan(queries, 0);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  // Every member of the batch now answers from the cache without a scan —
  // this is how the server's collector makes batched sessions cheap.
  for (const CubeQuery& query : queries) {
    auto hit = engine.Execute(query);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    EXPECT_EQ(engine.last_cache_outcome(), CacheOutcome::kExactHit);
  }
}

TEST_F(SharedScanTest, StaleEpochReturnsUnavailable) {
  std::vector<CubeQuery> queries = CorrelatedBatch();
  StarQueryEngine engine(db_.get(), /*use_views=*/false, /*threads=*/1);
  auto stale =
      engine.ExecuteSharedScan(queries, sales_->facts().epoch() + 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);
}

TEST_F(SharedScanTest, MixedPredicateConjunctionsAreRejected) {
  std::vector<Predicate> italy{{3, 2, PredicateOp::kIn, Countries(1)}};
  std::vector<CubeQuery> mixed{
      Query({"month"}, italy, {"quantity"}),
      Query({"month"}, {}, {"quantity"}),
  };
  StarQueryEngine engine(db_.get(), /*use_views=*/false, /*threads=*/1);
  auto result = engine.ExecuteSharedScan(mixed, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Server-level tests over MiniSales (mirrors server_test.cc's workload).
// ---------------------------------------------------------------------------

const char* kSibling =
    "with SALES for country = 'Italy' by product, country assess quantity "
    "against country = 'France' labels quartiles";
const char* kConstant =
    "with SALES by month assess sales against 10 labels quartiles";
const char* kPast =
    "with SALES for month = '1997-07' by month, store assess sales "
    "against past 2 labels quartiles";
const char* kRollup = "with SALES by month assess sales labels quartiles";

std::vector<std::string> MixedStatements() {
  return {kSibling, kConstant, kPast, kRollup};
}

/// Everything except timings must match bit-for-bit (same helper as
/// server_test.cc — duplicated because both live in anonymous namespaces).
void ExpectSameComputation(const AssessResult& expected,
                           const AssessResult& actual) {
  EXPECT_EQ(expected.plan, actual.plan);
  EXPECT_EQ(expected.measure, actual.measure);
  EXPECT_EQ(expected.benchmark_measure, actual.benchmark_measure);
  EXPECT_EQ(expected.comparison_measure, actual.comparison_measure);
  EXPECT_EQ(expected.sql, actual.sql);
  const Cube& lhs = expected.cube;
  const Cube& rhs = actual.cube;
  ASSERT_EQ(lhs.level_count(), rhs.level_count());
  ASSERT_EQ(lhs.measure_count(), rhs.measure_count());
  ASSERT_EQ(lhs.NumRows(), rhs.NumRows());
  for (int l = 0; l < lhs.level_count(); ++l) {
    EXPECT_EQ(lhs.level(l).name(), rhs.level(l).name());
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      ASSERT_EQ(lhs.CoordName(r, l), rhs.CoordName(r, l))
          << "row " << r << " level " << l;
    }
  }
  for (int m = 0; m < lhs.measure_count(); ++m) {
    EXPECT_EQ(lhs.measure_name(m), rhs.measure_name(m));
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      double x = lhs.MeasureAt(r, m), y = rhs.MeasureAt(r, m);
      ASSERT_EQ(std::isnan(x), std::isnan(y));
      if (!std::isnan(x)) {
        ASSERT_EQ(x, y) << "row " << r << " measure " << m;
      }
    }
  }
  EXPECT_EQ(lhs.labels(), rhs.labels());
}

class MqoServerTest : public ::testing::Test {
 protected:
  MqoServerTest() : mini_(BuildMiniSales()) {}

  std::unique_ptr<AssessServer> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<AssessServer>(mini_.db.get(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  AssessClient ConnectOrDie(const AssessServer& server) {
    auto client = AssessClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// In-process reference results, one per mixed statement.
  std::vector<AssessResult> ExpectedResults() {
    AssessSession local(mini_.db.get());
    std::vector<AssessResult> out;
    for (const std::string& statement : MixedStatements()) {
      auto r = local.Query(statement);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(std::move(*r));
    }
    return out;
  }

  testutil::MiniDb mini_;
};

/// The property the whole layer hangs on: a concurrent mixed workload gets
/// bit-identical answers whether the window is 0 (MQO off) or wide open,
/// at every thread interleaving TSan can find.
TEST_F(MqoServerTest, BatchedResultsMatchUnbatchedAcrossWindows) {
  constexpr int kClients = 6;
  constexpr int kRoundsPerClient = 3;
  std::vector<std::string> statements = MixedStatements();
  std::vector<AssessResult> expected = ExpectedResults();
  ASSERT_EQ(expected.size(), statements.size());

  for (int64_t window_us : {int64_t{0}, int64_t{100000}}) {
    ServerOptions options;
    options.worker_threads = 4;
    options.mqo_window_us = window_us;
    options.mqo_max_batch = 64;
    auto server = StartServer(options);

    std::atomic<int> failures{0};
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        AssessClient client = ConnectOrDie(*server);
        // Per-thread deterministic shuffle so concurrent batches mix
        // duplicates and distinct shapes.
        std::vector<int> order;
        for (int round = 0; round < kRoundsPerClient; ++round) {
          for (size_t s = 0; s < statements.size(); ++s) {
            order.push_back(static_cast<int>(s));
          }
        }
        std::mt19937 rng(1234 + t);
        std::shuffle(order.begin(), order.end(), rng);

        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        for (int index : order) {
          auto remote = client.Query(statements[index]);
          if (!remote.ok()) {
            ADD_FAILURE() << "client " << t << ": "
                          << remote.status().ToString();
            failures.fetch_add(1);
            return;
          }
          ExpectSameComputation(expected[index], *remote);
        }
      });
    }
    while (ready.load() < kClients) std::this_thread::yield();
    go.store(true);
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << "window_us=" << window_us;

    ServerStats stats = server->Snapshot();
    if (window_us == 0) {
      EXPECT_EQ(stats.mqo_batches, 0u);
      EXPECT_EQ(stats.mqo_shared_scans, 0u);
    } else {
      // Six clients fire their first statements into one open window;
      // four distinct statements means some group holds >= 2 by
      // pigeonhole.
      EXPECT_GT(stats.mqo_queries_batched, 0u);
      EXPECT_GE(stats.mqo_shared_scans, 1u);

      // The counters travel the wire as stats v6 and render in \stats.
      AssessClient client = ConnectOrDie(*server);
      auto remote_stats = client.Stats();
      ASSERT_TRUE(remote_stats.ok()) << remote_stats.status().ToString();
      EXPECT_EQ(remote_stats->mqo_batches, stats.mqo_batches);
      EXPECT_EQ(remote_stats->mqo_shared_scans, stats.mqo_shared_scans);
      EXPECT_NE(remote_stats->ToString().find("mqo:"), std::string::npos);
    }
    server->Stop();
  }
}

/// \analyze on a query that shared a batch-mate's scan says so.
TEST_F(MqoServerTest, ExplainAnalyzeReportsSharedScan) {
  // Concurrency makes the co-arrival timing-dependent; a fresh server per
  // attempt keeps the cache cold so the group actually forms.
  bool reported = false;
  for (int attempt = 0; attempt < 5 && !reported; ++attempt) {
    ServerOptions options;
    options.worker_threads = 2;
    options.mqo_window_us = 200000;
    options.mqo_max_batch = 8;
    auto server = StartServer(options);

    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::string> texts(2);
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        AssessClient client = ConnectOrDie(*server);
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        auto text = client.ExplainAnalyze(kRollup);
        ASSERT_TRUE(text.ok()) << text.status().ToString();
        texts[t] = std::move(*text);
      });
    }
    while (ready.load() < 2) std::this_thread::yield();
    go.store(true);
    for (std::thread& thread : threads) thread.join();
    server->Stop();

    reported =
        texts[0].find("mqo: shared scan with 2 queries") !=
            std::string::npos &&
        texts[1].find("mqo: shared scan with 2 queries") != std::string::npos;
  }
  EXPECT_TRUE(reported)
      << "two concurrent identical queries never co-batched in 5 attempts";
}

/// Stop() while a window is open: the held request is flushed and answered,
/// not abandoned — the client's promise resolves long before the window
/// would have expired on its own.
TEST_F(MqoServerTest, DrainFlushesPendingWindow) {
  ServerOptions options;
  options.worker_threads = 2;
  options.mqo_window_us = int64_t{10} * 1000 * 1000;  // 10 s: never expires
  auto server = StartServer(options);
  std::vector<AssessResult> expected = ExpectedResults();

  std::atomic<bool> issued{false};
  Result<AssessResult> remote = Status::Internal("never ran");
  std::thread client_thread([&] {
    AssessClient client = ConnectOrDie(*server);
    issued.store(true);
    remote = client.Query(kConstant);
  });
  while (!issued.load()) std::this_thread::yield();
  // Let the request reach the collector's window, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto start = std::chrono::steady_clock::now();
  server->Stop();
  client_thread.join();
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ExpectSameComputation(expected[1], *remote);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
}

/// An injected failure in one shared-scan group rejects that group's
/// members with the typed code and leaves every other query unharmed.
TEST_F(MqoServerTest, FailpointPoisonsOnlyItsGroup) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  std::vector<AssessResult> expected = ExpectedResults();

  bool saw_injected_error = false;
  for (int attempt = 0; attempt < 5 && !saw_injected_error; ++attempt) {
    ServerOptions options;
    options.worker_threads = 2;
    options.mqo_window_us = 300000;
    options.mqo_max_batch = 8;
    options.allow_failpoint_admin = true;
    auto server = StartServer(options);
    {
      AssessClient admin = ConnectOrDie(*server);
      auto armed = admin.Failpoint("mqo.batch=error(internal):budget=1");
      ASSERT_TRUE(armed.ok()) << armed.status().ToString();
    }

    // Two exact-duplicate groups racing into one window; whichever group
    // trips the budget=1 failpoint fails whole, the other succeeds.
    struct Outcome {
      int statement;
      Result<AssessResult> result = Status::Internal("never ran");
    };
    std::vector<Outcome> outcomes(4);
    outcomes[0].statement = 1;  // kConstant
    outcomes[1].statement = 1;
    outcomes[2].statement = 0;  // kSibling
    outcomes[3].statement = 0;
    std::vector<std::string> statements = MixedStatements();

    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        AssessClient client = ConnectOrDie(*server);
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        outcomes[t].result = client.Query(statements[outcomes[t].statement]);
      });
    }
    while (ready.load() < 4) std::this_thread::yield();
    go.store(true);
    for (std::thread& thread : threads) thread.join();

    int errors = 0;
    for (Outcome& outcome : outcomes) {
      if (outcome.result.ok()) {
        ExpectSameComputation(expected[outcome.statement], *outcome.result);
      } else {
        // Only the injected code ever surfaces; no mangled results, no
        // connection loss.
        EXPECT_EQ(outcome.result.status().code(), StatusCode::kInternal)
            << outcome.result.status().ToString();
        ++errors;
      }
    }
    // One group holds at most two of the four queries.
    EXPECT_LE(errors, 2);
    saw_injected_error = errors > 0;

    // The failpoint's budget is spent; the same workload now succeeds.
    AssessClient client = ConnectOrDie(*server);
    auto after = client.Query(kConstant);
    EXPECT_TRUE(after.ok()) << after.status().ToString();
    server->Stop();
    FailpointRegistry::Instance().DisarmAll();
  }
  EXPECT_TRUE(saw_injected_error)
      << "failpoint never fired inside a shared-scan group in 5 attempts";
}

}  // namespace
}  // namespace assess
