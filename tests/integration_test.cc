// End-to-end integration over the experimental workload: the four intention
// statements of Section 6 against generated SSB databases, checking result
// sanity, plan behaviour, cardinality scaling (Table 2's premise) and the
// timing-breakdown accounting used by Figures 3-4.

#include <gtest/gtest.h>

#include "assess/effort.h"
#include "assess/session.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"

namespace assess {
namespace {

class WorkloadIntegrationTest : public ::testing::Test {
 protected:
  WorkloadIntegrationTest() {
    SsbConfig config;
    config.scale_factor = 0.01;
    db_ = std::move(BuildSsbDatabase(config)).value();
    session_ = std::make_unique<AssessSession>(db_.get());
  }

  std::unique_ptr<StarDatabase> db_;
  std::unique_ptr<AssessSession> session_;
};

TEST_F(WorkloadIntegrationTest, EveryIntentionRunsOnEveryFeasiblePlan) {
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto analyzed = session_->Prepare(stmt.text);
    ASSERT_TRUE(analyzed.ok())
        << stmt.name << ": " << analyzed.status().ToString();
    for (PlanKind plan : FeasiblePlans(*analyzed)) {
      auto result = session_->Query(stmt.text, plan);
      ASSERT_TRUE(result.ok()) << stmt.name << "/" << PlanKindToString(plan)
                               << ": " << result.status().ToString();
      EXPECT_GT(result->cube.NumRows(), 0) << stmt.name;
      EXPECT_FALSE(result->sql.empty()) << stmt.name;
      EXPECT_GT(result->timings.Total(), 0.0) << stmt.name;
      // The Section 4.1 result contract: m, m_B, m_Δ and labels all present.
      EXPECT_TRUE(result->cube.MeasureIndex(result->measure).ok());
      EXPECT_TRUE(
          result->cube.MeasureIndex(result->benchmark_measure).ok())
          << stmt.name;
      EXPECT_TRUE(
          result->cube.MeasureIndex(result->comparison_measure).ok());
      EXPECT_EQ(static_cast<int64_t>(result->cube.labels().size()),
                result->cube.NumRows());
    }
  }
}

TEST_F(WorkloadIntegrationTest, TimingBucketsMatchPlanShape) {
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto analyzed = session_->Prepare(stmt.text);
    ASSERT_TRUE(analyzed.ok());
    for (PlanKind plan : FeasiblePlans(*analyzed)) {
      auto result = session_->Query(stmt.text, plan);
      ASSERT_TRUE(result.ok());
      const StepTimings& t = result->timings;
      if (plan == PlanKind::kNP) {
        EXPECT_GT(t.get_c, 0.0) << stmt.name;
        EXPECT_EQ(t.get_cb, 0.0) << stmt.name;
        if (analyzed->type != BenchmarkType::kConstant) {
          EXPECT_GT(t.get_b, 0.0) << stmt.name;
          EXPECT_GT(t.join, 0.0) << stmt.name;
        }
      } else {
        // Fused plans: a single engine call, no separate gets or client join.
        EXPECT_EQ(t.get_c, 0.0) << stmt.name;
        EXPECT_EQ(t.get_b, 0.0) << stmt.name;
        EXPECT_GT(t.get_cb, 0.0) << stmt.name;
        EXPECT_EQ(t.join, 0.0) << stmt.name;
      }
      if (analyzed->type == BenchmarkType::kPast) {
        EXPECT_GT(t.transform, 0.0) << stmt.name;
      }
    }
  }
}

TEST_F(WorkloadIntegrationTest, TargetCubeCardinalityScalesWithTheData) {
  // Table 2's premise: with by/for fixed, |C| grows with |C0|.
  SsbConfig small_config;
  small_config.scale_factor = 0.002;
  auto small_db = std::move(BuildSsbDatabase(small_config)).value();
  AssessSession small_session(small_db.get());
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto big = session_->Query(stmt.text);
    auto small = small_session.Query(stmt.text);
    ASSERT_TRUE(big.ok() && small.ok()) << stmt.name;
    EXPECT_GT(big->cube.NumRows(), small->cube.NumRows()) << stmt.name;
  }
}

TEST_F(WorkloadIntegrationTest, BestPlanIsFastestOrClose) {
  // Sanity rather than a strict benchmark: the preferred plan must not be
  // dramatically slower than NP on any intention (the Section 6 claim,
  // with slack for timer noise at this small scale).
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto analyzed = session_->Prepare(stmt.text);
    ASSERT_TRUE(analyzed.ok());
    auto np = session_->Query(stmt.text, PlanKind::kNP);
    auto best = session_->Query(stmt.text, BestPlan(*analyzed));
    ASSERT_TRUE(np.ok() && best.ok());
    EXPECT_LT(best->timings.Total(), np->timings.Total() * 3 + 0.05)
        << stmt.name;
  }
}

TEST_F(WorkloadIntegrationTest, EffortReportsCoverAllIntentions) {
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto analyzed = session_->Prepare(stmt.text);
    ASSERT_TRUE(analyzed.ok());
    auto report = MeasureFormulationEffort(*analyzed, *db_);
    ASSERT_TRUE(report.ok()) << stmt.name;
    EXPECT_GT(report->total_chars(), report->assess_chars * 10) << stmt.name;
  }
}

TEST_F(WorkloadIntegrationTest, ExternalJoinDropsUnbudgetedCustomers) {
  // BUDGET omits one customer in five, so assess returns fewer cells than
  // assess* and the difference is exactly the null-labeled cells.
  const std::string inner = SsbWorkload()[1].text;
  std::string star = inner;
  star.replace(star.find("assess revenue"), 14, "assess* revenue");
  auto inner_result = session_->Query(inner);
  auto star_result = session_->Query(star);
  ASSERT_TRUE(inner_result.ok() && star_result.ok())
      << star_result.status().ToString();
  EXPECT_GT(star_result->cube.NumRows(), inner_result->cube.NumRows());
  int64_t nulls = 0;
  for (const std::string& label : star_result->cube.labels()) {
    if (label.empty()) ++nulls;
  }
  EXPECT_EQ(star_result->cube.NumRows() - nulls,
            inner_result->cube.NumRows());
}

}  // namespace
}  // namespace assess
