// The vectorized-scan determinism contract: every SIMD tier (scalar /
// SSE4.2 / AVX2), every thread count and every run must produce
// bit-identical cubes — the tier is a pure performance knob. Plus the
// packed-column representation, the vectorized zone-map min/max, tail
// handling at every alignment boundary, and incremental extension of
// derived scan structures after appends.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "common/task_pool.h"
#include "olap/cube_query.h"
#include "storage/packed_column.h"
#include "storage/scan_kernels.h"
#include "storage/star_query_engine.h"
#include "storage/star_schema.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;
using ::assess::testutil::K;

// Coordinate -> raw bit pattern of one measure: tier comparisons must be
// exact to the last bit, not within float tolerance.
std::map<std::vector<std::string>, uint64_t> BitMap(
    const Cube& cube, const std::string& measure) {
  std::map<std::vector<std::string>, uint64_t> out;
  for (const auto& [coord, value] : CellMap(cube, measure)) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    out[coord] = bits;
  }
  return out;
}

// A randomly shaped star: 2-3 two-level dimensions of random cardinality,
// one measure per aggregation operator, `rows` facts with skewed foreign
// keys and sign-mixed values. One dimension row per fine member, so fk
// code == fine member id.
struct RandomStar {
  std::unique_ptr<StarDatabase> db;
  std::shared_ptr<CubeSchema> schema;
  std::vector<std::string> fine_levels;
  std::vector<std::string> coarse_levels;
};

RandomStar BuildRandomStar(uint64_t seed, int64_t rows) {
  Rng rng(seed);
  RandomStar star;
  star.schema = std::make_shared<CubeSchema>("R");
  const int num_dims = 2 + static_cast<int>(rng.Uniform(2));
  std::vector<DimensionTable> dims;
  std::vector<int64_t> dim_rows;
  for (int d = 0; d < num_dims; ++d) {
    const std::string tag = std::to_string(d);
    auto hier = std::make_shared<Hierarchy>("D" + tag);
    star.fine_levels.push_back("d" + tag + "_fine");
    star.coarse_levels.push_back("d" + tag + "_coarse");
    hier->AddLevel(star.fine_levels.back());
    hier->AddLevel(star.coarse_levels.back());
    const int fine = 2 + static_cast<int>(rng.Uniform(60));
    const int coarse = 1 + static_cast<int>(rng.Uniform(5));
    for (int m = 0; m < coarse; ++m) {
      hier->AddMember(1, "c" + tag + "_" + std::to_string(m));
    }
    DimensionTable dim("D" + tag, hier);
    for (int m = 0; m < fine; ++m) {
      MemberId f = hier->AddMember(0, "f" + tag + "_" + std::to_string(m));
      MemberId c = static_cast<MemberId>(rng.Uniform(coarse));
      hier->SetParent(0, f, c);
      dim.AddRow({f, c});
    }
    star.schema->AddHierarchy(hier);
    dims.push_back(std::move(dim));
    dim_rows.push_back(fine);
  }
  star.schema->AddMeasure({"s", AggOp::kSum});
  star.schema->AddMeasure({"a", AggOp::kAvg});
  star.schema->AddMeasure({"lo", AggOp::kMin});
  star.schema->AddMeasure({"hi", AggOp::kMax});
  star.schema->AddMeasure({"n", AggOp::kCount});
  FactTable facts("R", num_dims, 5);
  facts.Reserve(rows);
  std::vector<int32_t> fks(num_dims);
  for (int64_t i = 0; i < rows; ++i) {
    for (int d = 0; d < num_dims; ++d) {
      fks[d] = static_cast<int32_t>(
          rng.Skewed(static_cast<uint64_t>(dim_rows[d])));
    }
    double v = rng.NextDouble() * 1000.0 - 500.0;
    facts.AddRow(fks, {v, v, v, v, v});
  }
  star.db = std::make_unique<StarDatabase>();
  EXPECT_TRUE(star.db
                  ->Register("R", std::make_unique<BoundCube>(
                                      star.schema, std::move(dims),
                                      std::move(facts)))
                  .ok());
  return star;
}

class SimdKernelTest : public ::testing::Test {
 protected:
  ~SimdKernelTest() override { ForceSimdLevelForTest(-1); }
};

TEST_F(SimdKernelTest, ResolveSimdLevelParsesTheKnob) {
  const SimdLevel avx2 = SimdLevel::kAVX2;
  const SimdLevel sse42 = SimdLevel::kSSE42;
  const SimdLevel scalar = SimdLevel::kScalar;
  EXPECT_EQ(ResolveSimdLevel(nullptr, avx2), avx2);
  for (const char* off : {"off", "OFF", "scalar", "0", "none"}) {
    EXPECT_EQ(ResolveSimdLevel(off, avx2), scalar) << off;
  }
  EXPECT_EQ(ResolveSimdLevel("sse42", avx2), sse42);
  EXPECT_EQ(ResolveSimdLevel("SSE4.2", avx2), sse42);
  // The knob is a ceiling: asking for a tier the CPU lacks falls back.
  EXPECT_EQ(ResolveSimdLevel("avx2", sse42), sse42);
  EXPECT_EQ(ResolveSimdLevel("sse42", scalar), scalar);
  EXPECT_EQ(ResolveSimdLevel("avx2", avx2), avx2);
  EXPECT_EQ(ResolveSimdLevel("auto", avx2), avx2);
  EXPECT_EQ(ResolveSimdLevel("definitely-not-a-tier", sse42), sse42);
}

TEST_F(SimdKernelTest, PackedColumnPicksNarrowestWidth) {
  struct Case {
    int32_t max_code;
    PackedColumn::Width want;
  };
  for (const Case& c :
       {Case{0, PackedColumn::Width::kU8},
        Case{255, PackedColumn::Width::kU8},
        Case{256, PackedColumn::Width::kU16},
        Case{65535, PackedColumn::Width::kU16},
        Case{65536, PackedColumn::Width::kU32}}) {
    Rng rng(c.max_code);
    std::vector<int32_t> codes;
    for (int i = 0; i < 1000; ++i) {
      codes.push_back(static_cast<int32_t>(
          rng.Uniform(static_cast<uint64_t>(c.max_code) + 1)));
    }
    codes[500] = c.max_code;  // force the boundary to appear
    PackedColumn col = PackedColumn::Pack(codes);
    EXPECT_EQ(col.width(), c.want) << c.max_code;
    EXPECT_EQ(col.size(), static_cast<int64_t>(codes.size()));
    // Cache-line alignment is part of the layout contract.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(col.data()) % kSimdAlign, 0u);
    for (size_t i = 0; i < codes.size(); ++i) {
      ASSERT_EQ(col.CodeAt(static_cast<int64_t>(i)), codes[i]) << i;
    }
  }
  PackedColumn empty = PackedColumn::Pack({});
  EXPECT_EQ(empty.size(), 0);
}

TEST_F(SimdKernelTest, MinMaxAgreesAcrossTiersAndLengths) {
  const int best = static_cast<int>(DetectCpuSimdLevel());
  Rng rng(11);
  for (int64_t n : {int64_t{1}, int64_t{2}, int64_t{7}, int64_t{8},
                    int64_t{9}, int64_t{15}, int64_t{16}, int64_t{17},
                    int64_t{100}, int64_t{4097}}) {
    std::vector<int32_t> values;
    values.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      values.push_back(static_cast<int32_t>(rng.Uniform(1000000)) - 500000);
    }
    int32_t want_lo = 0;
    int32_t want_hi = 0;
    MinMaxInt32(SimdLevel::kScalar, values.data(), n, &want_lo, &want_hi);
    for (int level = 0; level <= best; ++level) {
      int32_t lo = 0;
      int32_t hi = 0;
      MinMaxInt32(static_cast<SimdLevel>(level), values.data(), n, &lo, &hi);
      EXPECT_EQ(lo, want_lo) << "level=" << level << " n=" << n;
      EXPECT_EQ(hi, want_hi) << "level=" << level << " n=" << n;
    }
  }
}

// The core property: random cubes, random group-bys, random predicates,
// every aggregation operator — scalar and every compiled-in vector tier,
// at 1 and 4 threads, must agree on every output bit.
TEST_F(SimdKernelTest, BitIdenticalAcrossTiersAndThreads) {
  const int best = static_cast<int>(DetectCpuSimdLevel());
  const std::vector<const char*> measures = {"s", "a", "lo", "hi", "n"};
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    // Spans multiple morsels so the parallel path and the merge engage.
    RandomStar star = BuildRandomStar(seed, /*rows=*/3 * kMorselRows + 777);
    Rng rng(seed * 97);

    // A handful of random queries per star: random subset of levels to
    // group by, random predicates (possibly none, possibly on a grouped
    // hierarchy, possibly on the coarse level).
    for (int q = 0; q < 4; ++q) {
      std::vector<std::string> by;
      for (size_t d = 0; d < star.fine_levels.size(); ++d) {
        switch (rng.Uniform(3)) {
          case 0:
            by.push_back(star.fine_levels[d]);
            break;
          case 1:
            by.push_back(star.coarse_levels[d]);
            break;
          default:
            break;  // not grouped
        }
      }
      std::vector<Predicate> preds;
      for (size_t d = 0; d < star.fine_levels.size(); ++d) {
        if (rng.Uniform(2) == 0) continue;
        const Hierarchy& hier =
            *star.schema->hierarchy_ptr(static_cast<int>(d));
        int level = static_cast<int>(rng.Uniform(2));
        int32_t card = hier.LevelCardinality(level);
        Predicate p;
        p.hierarchy = static_cast<int>(d);
        p.level = level;
        p.op = PredicateOp::kIn;
        int picks = 1 + static_cast<int>(rng.Uniform(3));
        for (int i = 0; i < picks; ++i) {
          p.members.push_back(hier.MemberName(
              level, static_cast<MemberId>(rng.Uniform(card))));
        }
        preds.push_back(std::move(p));
      }
      auto query_or = CubeQuery::Make(*star.schema, "R", by, preds,
                                      {"s", "a", "lo", "hi", "n"});
      ASSERT_TRUE(query_or.ok()) << query_or.status().ToString();
      const CubeQuery& query = *query_or;

      ForceSimdLevelForTest(0);
      StarQueryEngine reference(star.db.get(), /*use_views=*/false, 1);
      Cube expected = *reference.Execute(query);
      std::vector<std::map<std::vector<std::string>, uint64_t>> want;
      for (const char* m : measures) want.push_back(BitMap(expected, m));

      for (int level = 0; level <= best; ++level) {
        for (int threads : {1, 4}) {
          ForceSimdLevelForTest(level);
          StarQueryEngine engine(star.db.get(), /*use_views=*/false,
                                 threads);
          Cube actual = *engine.Execute(query);
          for (size_t m = 0; m < measures.size(); ++m) {
            EXPECT_EQ(want[m], BitMap(actual, measures[m]))
                << "seed=" << seed << " q=" << q << " tier=" << level
                << " threads=" << threads << " measure=" << measures[m];
          }
        }
      }
      ForceSimdLevelForTest(-1);
    }
  }
}

// Group-by spaces beyond kDenseKeyLimit take the generic hash kernel in
// every tier; results must still be tier- and thread-independent.
TEST_F(SimdKernelTest, HugeKeySpaceFallsBackDeterministically) {
  const int best = static_cast<int>(DetectCpuSimdLevel());
  auto schema = std::make_shared<CubeSchema>("W");
  std::vector<DimensionTable> dims;
  constexpr int kCard = 70;  // (70+1)^3 > 2^18: generic path
  std::vector<std::string> by;
  for (int d = 0; d < 3; ++d) {
    auto hier = std::make_shared<Hierarchy>("W" + std::to_string(d));
    by.push_back("w" + std::to_string(d));
    hier->AddLevel(by.back());
    DimensionTable dim("W" + std::to_string(d), hier);
    for (int m = 0; m < kCard; ++m) {
      dim.AddRow({hier->AddMember(
          0, "m" + std::to_string(d) + "_" + std::to_string(m))});
    }
    schema->AddHierarchy(hier);
    dims.push_back(std::move(dim));
  }
  schema->AddMeasure({"s", AggOp::kSum});
  FactTable facts("W", 3, 1);
  Rng rng(23);
  const int64_t rows = 2 * kMorselRows + 13;
  facts.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    facts.AddRow({static_cast<int32_t>(rng.Uniform(kCard)),
                  static_cast<int32_t>(rng.Uniform(kCard)),
                  static_cast<int32_t>(rng.Uniform(kCard))},
                 {rng.NextDouble() * 10.0 - 5.0});
  }
  StarDatabase db;
  ASSERT_TRUE(db.Register("W", std::make_unique<BoundCube>(
                                   schema, std::move(dims),
                                   std::move(facts)))
                  .ok());
  CubeQuery q = *CubeQuery::Make(*schema, "W", by, {}, {"s"});
  ForceSimdLevelForTest(0);
  StarQueryEngine reference(&db, false, 1);
  auto want = BitMap(*reference.Execute(q), "s");
  EXPECT_GT(want.size(), 0u);
  for (int level = 0; level <= best; ++level) {
    for (int threads : {1, 4}) {
      ForceSimdLevelForTest(level);
      StarQueryEngine engine(&db, false, threads);
      EXPECT_EQ(want, BitMap(*engine.Execute(q), "s"))
          << "tier=" << level << " threads=" << threads;
    }
  }
}

// Tail behavior at every alignment boundary the kernels care about: vector
// width, kernel block, bitmap word and morsel edges, including the empty
// table. Integer-valued measures make the expected sums exact under any
// summation order, so the test can also pin absolute values.
TEST_F(SimdKernelTest, TailRowCountsAreExact) {
  const int best = static_cast<int>(DetectCpuSimdLevel());
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  constexpr int kCard = 4;
  DimensionTable dim_proto("K", hier);
  for (int g = 0; g < kCard; ++g) {
    dim_proto.AddRow({hier->AddMember(0, "g" + std::to_string(g))});
  }
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  schema->AddMeasure({"n", AggOp::kCount});

  for (int64_t rows :
       {int64_t{0}, int64_t{1}, int64_t{3}, int64_t{4}, int64_t{5},
        int64_t{63}, int64_t{64}, int64_t{65}, int64_t{4095}, int64_t{4096},
        int64_t{4097}, kMorselRows - 1, kMorselRows, kMorselRows + 1}) {
    FactTable facts("T", 1, 2);
    facts.Reserve(rows);
    double want_sum = 0.0;
    int64_t want_count = 0;
    for (int64_t i = 0; i < rows; ++i) {
      int32_t code = static_cast<int32_t>(i % kCard);
      double v = static_cast<double>(i % 7);
      facts.AddRow({code}, {v, v});
      if (code < 2) {  // the predicate below keeps g0 and g1
        want_sum += v;
        ++want_count;
      }
    }
    StarDatabase db;
    ASSERT_TRUE(db.Register("T",
                            std::make_unique<BoundCube>(
                                schema,
                                std::vector<DimensionTable>{dim_proto},
                                std::move(facts)))
                    .ok());
    CubeQuery q = *CubeQuery::Make(
        *schema, "T", {}, {{0, 0, PredicateOp::kIn, {"g0", "g1"}}},
        {"s", "n"});
    for (int level = 0; level <= best; ++level) {
      ForceSimdLevelForTest(level);
      StarQueryEngine engine(&db, false, 1);
      Cube cube = *engine.Execute(q);
      if (want_count == 0) {
        EXPECT_EQ(cube.NumRows(), 0) << "rows=" << rows;
        continue;
      }
      ASSERT_EQ(cube.NumRows(), 1) << "rows=" << rows << " tier=" << level;
      auto sums = CellMap(cube, "s");
      auto counts = CellMap(cube, "n");
      EXPECT_EQ(sums.begin()->second, want_sum)
          << "rows=" << rows << " tier=" << level;
      EXPECT_EQ(counts.begin()->second, static_cast<double>(want_count))
          << "rows=" << rows << " tier=" << level;
    }
  }
}

// Derived scan structures (packed columns, zone maps) used to fail the
// scan hard when rows were appended after they were built. Appends now
// *extend* them incrementally for the suffix: queries after an append see
// the new rows, the epoch advances, and the packed columns are shared and
// appended in place rather than rebuilt.
TEST_F(SimdKernelTest, AppendExtendsDerivedStructures) {
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  DimensionTable dim("K", hier);
  for (int g = 0; g < 2; ++g) {
    dim.AddRow({hier->AddMember(0, "g" + std::to_string(g))});
  }
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  FactTable facts("T", 1, 1);
  for (int64_t i = 0; i < 100; ++i) {
    facts.AddRow({static_cast<int32_t>(i % 2)}, {1.0});
  }
  // Build the derived views at 100 rows, then keep loading.
  FactSnapshot before = facts.SnapshotWithDerived();
  ASSERT_NE(before.derived, nullptr);
  EXPECT_EQ(before.derived->rows(), 100);
  facts.AddRow({0}, {1.0});
  EXPECT_GT(facts.epoch(), before.epoch);

  // A fresh snapshot extends the previous accelerators instead of failing:
  // the packed column covers the appended row without a width repack. The
  // first extension reallocates (Pack sizes its buffer exactly) but leaves
  // geometric headroom, so the next extension appends in place and shares
  // the buffer with the prior snapshot.
  FactSnapshot after = facts.SnapshotWithDerived();
  EXPECT_EQ(after.derived->rows(), 101);
  EXPECT_EQ(after.derived->repacks, 0u);
  EXPECT_EQ(after.derived->packed.dims[0].CodeAt(100), 0);
  // The old snapshot still reads its own shorter prefix.
  EXPECT_EQ(before.derived->packed.dims[0].size(), 100);
  facts.AddRow({1}, {1.0});
  FactSnapshot third = facts.SnapshotWithDerived();
  EXPECT_EQ(third.derived->rows(), 102);
  EXPECT_EQ(third.derived->repacks, 0u);
  EXPECT_EQ(third.derived->packed.dims[0].data(),
            after.derived->packed.dims[0].data());
  EXPECT_EQ(third.derived->packed.dims[0].CodeAt(101), 1);

  StarDatabase db;
  ASSERT_TRUE(db.Register("T", std::make_unique<BoundCube>(
                                   schema,
                                   std::vector<DimensionTable>{dim},
                                   std::move(facts)))
                  .ok());
  StarQueryEngine engine(&db, false, 1);
  CubeQuery q = *CubeQuery::Make(*schema, "T", {"k"}, {}, {"s"});
  auto result = engine.Execute(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto sums = CellMap(*result, "s");
  EXPECT_EQ(sums.at(K("g0")), 51.0);  // 50 original + 1 appended
  EXPECT_EQ(sums.at(K("g1")), 51.0);  // 50 original + 1 appended
}

}  // namespace
}  // namespace assess
