// Equivalence of the engine's partitioned parallel aggregation with the
// serial path: same cells, same aggregates, for every operator and for all
// three push-down entry points.

#include <gtest/gtest.h>

#include <cmath>

#include "assess/session.h"
#include "common/rng.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"
#include "storage/star_query_engine.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;

// Parallel partial sums reduce in a different order than the serial scan,
// so aggregates may differ in the last ulp; compare with a relative bound.
void ExpectCellsNear(const Cube& expected, const Cube& actual,
                     const std::string& measure) {
  auto lhs = CellMap(expected, measure);
  auto rhs = CellMap(actual, measure);
  ASSERT_EQ(lhs.size(), rhs.size()) << measure;
  for (const auto& [coord, value] : lhs) {
    auto it = rhs.find(coord);
    ASSERT_NE(it, rhs.end()) << measure;
    EXPECT_NEAR(value, it->second, 1e-9 * (1.0 + std::fabs(value)))
        << measure;
  }
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  ParallelEngineTest() {
    SsbConfig config;
    config.scale_factor = 0.05;  // 300k facts: above the parallel threshold
    db_ = std::move(BuildSsbDatabase(config)).value();
    ssb_ = *db_->Find("SSB");
  }

  CubeQuery Query(const std::vector<std::string>& by,
                  std::vector<Predicate> preds,
                  const std::vector<std::string>& measures) {
    auto q = CubeQuery::Make(ssb_->schema(), "SSB", by, std::move(preds),
                             measures);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::unique_ptr<StarDatabase> db_;
  const BoundCube* ssb_ = nullptr;
};

TEST_F(ParallelEngineTest, MatchesSerialAcrossGroupBys) {
  StarQueryEngine serial(db_.get(), true, 1);
  StarQueryEngine parallel(db_.get(), true, 4);
  const std::vector<std::vector<std::string>> group_bys = {
      {"part"}, {"c_nation", "s_region"}, {"month", "mfgr"}, {}};
  for (const auto& by : group_bys) {
    CubeQuery q = Query(by, {}, {"revenue", "quantity"});
    Cube expected = *serial.Execute(q);
    Cube actual = *parallel.Execute(q);
    ExpectCellsNear(expected, actual, "revenue");
    ExpectCellsNear(expected, actual, "quantity");
  }
}

TEST_F(ParallelEngineTest, MatchesSerialWithPredicates) {
  StarQueryEngine serial(db_.get(), true, 1);
  StarQueryEngine parallel(db_.get(), true, 3);
  CubeQuery q = Query({"customer"},
                      {{3, 3, PredicateOp::kEquals, {"ASIA"}},
                       {0, 2, PredicateOp::kIn, {"1997", "1998"}}},
                      {"revenue"});
  Cube expected = *serial.Execute(q);
  Cube actual = *parallel.Execute(q);
  EXPECT_GT(expected.NumRows(), 0);
  ExpectCellsNear(expected, actual, "revenue");
}

TEST_F(ParallelEngineTest, AllAggregationOperatorsMerge) {
  // Build a cube whose measures exercise every operator, large enough to
  // trigger the parallel path.
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  constexpr int kGroups = 100;
  DimensionTable dim("k", hier);
  for (int g = 0; g < kGroups; ++g) {
    dim.AddRow({hier->AddMember(0, "g" + std::to_string(g))});
  }
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  schema->AddMeasure({"a", AggOp::kAvg});
  schema->AddMeasure({"lo", AggOp::kMin});
  schema->AddMeasure({"hi", AggOp::kMax});
  schema->AddMeasure({"n", AggOp::kCount});
  FactTable facts("T", 1, 5);
  Rng rng(3);
  constexpr int64_t kRows = 200000;
  facts.Reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    double v = static_cast<double>(rng.Uniform(1000));
    facts.AddRow({static_cast<int32_t>(rng.Uniform(kGroups))},
                 {v, v, v, v, v});
  }
  StarDatabase db;
  ASSERT_TRUE(db.Register("T", std::make_unique<BoundCube>(
                                   schema, std::vector<DimensionTable>{dim},
                                   std::move(facts)))
                  .ok());
  StarQueryEngine serial(&db, true, 1);
  StarQueryEngine parallel(&db, true, 7);
  CubeQuery q = *CubeQuery::Make(*schema, "T", {"k"}, {},
                                 {"s", "a", "lo", "hi", "n"});
  Cube expected = *serial.Execute(q);
  Cube actual = *parallel.Execute(q);
  ASSERT_EQ(expected.NumRows(), kGroups);
  for (const char* m : {"s", "a", "lo", "hi", "n"}) {
    auto lhs = CellMap(expected, m);
    auto rhs = CellMap(actual, m);
    ASSERT_EQ(lhs.size(), rhs.size()) << m;
    for (const auto& [coord, value] : lhs) {
      EXPECT_NEAR(value, rhs[coord], 1e-9 * (1.0 + std::fabs(value))) << m;
    }
  }
}

TEST_F(ParallelEngineTest, SmallScansStaySerial) {
  // Below the threshold the parallel engine must not spawn (observable only
  // through identical results, but this pins the configuration path).
  SsbConfig config;
  config.scale_factor = 0.002;
  auto small = std::move(BuildSsbDatabase(config)).value();
  StarQueryEngine serial(small.get(), true, 1);
  StarQueryEngine parallel(small.get(), true, 8);
  const BoundCube* cube = *small->Find("SSB");
  CubeQuery q = *CubeQuery::Make(cube->schema(), "SSB", {"brand"}, {},
                                 {"revenue"});
  // Below the threshold both run serially: bit-exact equality holds.
  EXPECT_EQ(CellMap(*serial.Execute(q), "revenue"),
            CellMap(*parallel.Execute(q), "revenue"));
}

TEST_F(ParallelEngineTest, FullAssessPipelineUnderParallelEngine) {
  // The executor wires the engine internally; equivalence at statement
  // level across thread counts.
  AssessSession session(db_.get());
  auto expected = session.Query(SsbWorkload()[2].text);
  ASSERT_TRUE(expected.ok());
  // A second engine with threads directly:
  StarQueryEngine parallel(db_.get(), true, 4);
  auto analyzed = session.Prepare(SsbWorkload()[2].text);
  ASSERT_TRUE(analyzed.ok());
  Cube target = *parallel.Execute(analyzed->target);
  Cube benchmark = *parallel.Execute(analyzed->benchmark);
  EXPECT_GT(target.NumRows(), 0);
  EXPECT_GT(benchmark.NumRows(), 0);
  EXPECT_EQ(target.NumRows() + benchmark.NumRows(),
            [&] {
              StarQueryEngine serial(db_.get(), true, 1);
              return serial.Execute(analyzed->target)->NumRows() +
                     serial.Execute(analyzed->benchmark)->NumRows();
            }());
}

}  // namespace
}  // namespace assess
