// Equivalence of the engine's partitioned parallel aggregation with the
// serial path: same cells, same aggregates, for every operator and for all
// three push-down entry points.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "assess/session.h"
#include "common/rng.h"
#include "common/task_pool.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"
#include "storage/star_query_engine.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;

// Parallel partial sums reduce in a different order than the serial scan,
// so aggregates may differ in the last ulp; compare with a relative bound.
void ExpectCellsNear(const Cube& expected, const Cube& actual,
                     const std::string& measure) {
  auto lhs = CellMap(expected, measure);
  auto rhs = CellMap(actual, measure);
  ASSERT_EQ(lhs.size(), rhs.size()) << measure;
  for (const auto& [coord, value] : lhs) {
    auto it = rhs.find(coord);
    ASSERT_NE(it, rhs.end()) << measure;
    EXPECT_NEAR(value, it->second, 1e-9 * (1.0 + std::fabs(value)))
        << measure;
  }
}

// Coordinate -> raw bit pattern of one measure, for *bit-identical*
// comparison: the morsel-order merge promises the same output bits at every
// thread count, stronger than ExpectCellsNear's ulp tolerance.
std::map<std::vector<std::string>, uint64_t> BitMap(
    const Cube& cube, const std::string& measure) {
  std::map<std::vector<std::string>, uint64_t> out;
  for (const auto& [coord, value] : CellMap(cube, measure)) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    out[coord] = bits;
  }
  return out;
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  ParallelEngineTest() {
    SsbConfig config;
    config.scale_factor = 0.05;  // 300k facts: above the parallel threshold
    db_ = std::move(BuildSsbDatabase(config)).value();
    ssb_ = *db_->Find("SSB");
  }

  CubeQuery Query(const std::vector<std::string>& by,
                  std::vector<Predicate> preds,
                  const std::vector<std::string>& measures) {
    auto q = CubeQuery::Make(ssb_->schema(), "SSB", by, std::move(preds),
                             measures);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::unique_ptr<StarDatabase> db_;
  const BoundCube* ssb_ = nullptr;
};

TEST_F(ParallelEngineTest, MatchesSerialAcrossGroupBys) {
  StarQueryEngine serial(db_.get(), true, 1);
  StarQueryEngine parallel(db_.get(), true, 4);
  const std::vector<std::vector<std::string>> group_bys = {
      {"part"}, {"c_nation", "s_region"}, {"month", "mfgr"}, {}};
  for (const auto& by : group_bys) {
    CubeQuery q = Query(by, {}, {"revenue", "quantity"});
    Cube expected = *serial.Execute(q);
    Cube actual = *parallel.Execute(q);
    ExpectCellsNear(expected, actual, "revenue");
    ExpectCellsNear(expected, actual, "quantity");
  }
}

TEST_F(ParallelEngineTest, MatchesSerialWithPredicates) {
  StarQueryEngine serial(db_.get(), true, 1);
  StarQueryEngine parallel(db_.get(), true, 3);
  CubeQuery q = Query({"customer"},
                      {{3, 3, PredicateOp::kEquals, {"ASIA"}},
                       {0, 2, PredicateOp::kIn, {"1997", "1998"}}},
                      {"revenue"});
  Cube expected = *serial.Execute(q);
  Cube actual = *parallel.Execute(q);
  EXPECT_GT(expected.NumRows(), 0);
  ExpectCellsNear(expected, actual, "revenue");
}

TEST_F(ParallelEngineTest, AllAggregationOperatorsMerge) {
  // Build a cube whose measures exercise every operator, large enough to
  // trigger the parallel path.
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  constexpr int kGroups = 100;
  DimensionTable dim("k", hier);
  for (int g = 0; g < kGroups; ++g) {
    dim.AddRow({hier->AddMember(0, "g" + std::to_string(g))});
  }
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  schema->AddMeasure({"a", AggOp::kAvg});
  schema->AddMeasure({"lo", AggOp::kMin});
  schema->AddMeasure({"hi", AggOp::kMax});
  schema->AddMeasure({"n", AggOp::kCount});
  FactTable facts("T", 1, 5);
  Rng rng(3);
  constexpr int64_t kRows = 200000;
  facts.Reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    double v = static_cast<double>(rng.Uniform(1000));
    facts.AddRow({static_cast<int32_t>(rng.Uniform(kGroups))},
                 {v, v, v, v, v});
  }
  StarDatabase db;
  ASSERT_TRUE(db.Register("T", std::make_unique<BoundCube>(
                                   schema, std::vector<DimensionTable>{dim},
                                   std::move(facts)))
                  .ok());
  StarQueryEngine serial(&db, true, 1);
  StarQueryEngine parallel(&db, true, 7);
  CubeQuery q = *CubeQuery::Make(*schema, "T", {"k"}, {},
                                 {"s", "a", "lo", "hi", "n"});
  Cube expected = *serial.Execute(q);
  Cube actual = *parallel.Execute(q);
  ASSERT_EQ(expected.NumRows(), kGroups);
  for (const char* m : {"s", "a", "lo", "hi", "n"}) {
    auto lhs = CellMap(expected, m);
    auto rhs = CellMap(actual, m);
    ASSERT_EQ(lhs.size(), rhs.size()) << m;
    for (const auto& [coord, value] : lhs) {
      EXPECT_NEAR(value, rhs[coord], 1e-9 * (1.0 + std::fabs(value))) << m;
    }
  }
}

TEST_F(ParallelEngineTest, SmallScansStaySerial) {
  // Below the threshold the parallel engine must not spawn (observable only
  // through identical results, but this pins the configuration path).
  SsbConfig config;
  config.scale_factor = 0.002;
  auto small = std::move(BuildSsbDatabase(config)).value();
  StarQueryEngine serial(small.get(), true, 1);
  StarQueryEngine parallel(small.get(), true, 8);
  const BoundCube* cube = *small->Find("SSB");
  CubeQuery q = *CubeQuery::Make(cube->schema(), "SSB", {"brand"}, {},
                                 {"revenue"});
  // Below the threshold both run serially: bit-exact equality holds.
  EXPECT_EQ(CellMap(*serial.Execute(q), "revenue"),
            CellMap(*parallel.Execute(q), "revenue"));
}

TEST_F(ParallelEngineTest, FullAssessPipelineUnderParallelEngine) {
  // The executor wires the engine internally; equivalence at statement
  // level across thread counts.
  AssessSession session(db_.get());
  auto expected = session.Query(SsbWorkload()[2].text);
  ASSERT_TRUE(expected.ok());
  // A second engine with threads directly:
  StarQueryEngine parallel(db_.get(), true, 4);
  auto analyzed = session.Prepare(SsbWorkload()[2].text);
  ASSERT_TRUE(analyzed.ok());
  Cube target = *parallel.Execute(analyzed->target);
  Cube benchmark = *parallel.Execute(analyzed->benchmark);
  EXPECT_GT(target.NumRows(), 0);
  EXPECT_GT(benchmark.NumRows(), 0);
  EXPECT_EQ(target.NumRows() + benchmark.NumRows(),
            [&] {
              StarQueryEngine serial(db_.get(), true, 1);
              return serial.Execute(analyzed->target)->NumRows() +
                     serial.Execute(analyzed->benchmark)->NumRows();
            }());
}

TEST_F(ParallelEngineTest, BitIdenticalAcrossThreadCountsAndRuns) {
  // The determinism contract: every output bit is a function of the data
  // alone. threads=1, threads=2 and threads=8 — and repeated runs of each —
  // must agree exactly, not just within float tolerance, because partials
  // are merged in morsel index order regardless of which thread filled them.
  const std::vector<std::vector<std::string>> group_bys = {
      {"part"}, {"c_nation", "s_region"}, {}};
  for (const auto& by : group_bys) {
    CubeQuery unpredicated = Query(by, {}, {"revenue", "quantity"});
    CubeQuery predicated =
        Query(by, {{3, 3, PredicateOp::kEquals, {"ASIA"}}}, {"revenue"});
    StarQueryEngine baseline(db_.get(), false, 1);
    auto expected_rev = BitMap(*baseline.Execute(unpredicated), "revenue");
    auto expected_qty = BitMap(*baseline.Execute(unpredicated), "quantity");
    auto expected_pred = BitMap(*baseline.Execute(predicated), "revenue");
    for (int threads : {1, 2, 8}) {
      StarQueryEngine engine(db_.get(), false, threads);
      for (int run = 0; run < 2; ++run) {
        Cube cube = *engine.Execute(unpredicated);
        EXPECT_EQ(expected_rev, BitMap(cube, "revenue"))
            << "threads=" << threads << " run=" << run;
        EXPECT_EQ(expected_qty, BitMap(cube, "quantity"))
            << "threads=" << threads << " run=" << run;
        EXPECT_EQ(expected_pred, BitMap(*engine.Execute(predicated), "revenue"))
            << "threads=" << threads << " run=" << run;
      }
    }
  }
}

TEST_F(ParallelEngineTest, ZoneMapsSkipMorselsOnClusteredData) {
  // A table clustered on the dimension key — code = row / kMorselRows — is
  // the best case for zone maps: an equality predicate touches exactly one
  // morsel and every other one is proven empty and skipped without a scan.
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  constexpr int kChunks = 4;
  DimensionTable dim("k", hier);
  for (int g = 0; g < kChunks; ++g) {
    dim.AddRow({hier->AddMember(0, "g" + std::to_string(g))});
  }
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"s", AggOp::kSum});
  FactTable facts("T", 1, 1);
  const int64_t rows = kChunks * kMorselRows;
  facts.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    facts.AddRow({static_cast<int32_t>(i / kMorselRows)}, {1.0});
  }
  StarDatabase db;
  ASSERT_TRUE(db.Register("T", std::make_unique<BoundCube>(
                                   schema, std::vector<DimensionTable>{dim},
                                   std::move(facts)))
                  .ok());
  StarQueryEngine engine(&db, false, 2);
  CubeQuery q = *CubeQuery::Make(*schema, "T", {},
                                 {{0, 0, PredicateOp::kEquals, {"g2"}}},
                                 {"s"});
  Cube cube = *engine.Execute(q);
  ASSERT_EQ(cube.NumRows(), 1);
  EXPECT_EQ(CellMap(cube, "s")[{}], static_cast<double>(kMorselRows));
  ScanStats stats = engine.scan_stats();
  EXPECT_EQ(stats.morsels_scanned, 1u);
  EXPECT_EQ(stats.morsels_skipped, static_cast<uint64_t>(kChunks - 1));

  // An unpredicated scan of the same table must not skip anything.
  CubeQuery all = *CubeQuery::Make(*schema, "T", {"k"}, {}, {"s"});
  Cube full = *engine.Execute(all);
  EXPECT_EQ(full.NumRows(), kChunks);
  stats = engine.scan_stats();
  EXPECT_EQ(stats.morsels_scanned, 1u + kChunks);
  EXPECT_EQ(stats.morsels_skipped, static_cast<uint64_t>(kChunks - 1));
}

TEST_F(ParallelEngineTest, AssessResultBitIdenticalAcrossSessionThreads) {
  // Statement-level determinism: whole AssessResults — cells, measures,
  // labels, chosen plan, pushed SQL — agree bit-for-bit across sessions
  // configured at different thread counts, and across repeated runs.
  const std::string statement = SsbWorkload()[2].text;
  ExecutorOptions serial_options;
  serial_options.threads = 1;
  AssessSession serial(db_.get(), serial_options);
  auto expected = serial.Query(statement);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  for (int threads : {2, 8}) {
    ExecutorOptions options;
    options.threads = threads;
    AssessSession session(db_.get(), options);
    for (int run = 0; run < 2; ++run) {
      auto actual = session.Query(statement);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(expected->plan, actual->plan) << threads;
      EXPECT_EQ(expected->sql, actual->sql) << threads;
      const Cube& lhs = expected->cube;
      const Cube& rhs = actual->cube;
      ASSERT_EQ(lhs.NumRows(), rhs.NumRows()) << threads;
      ASSERT_EQ(lhs.measure_count(), rhs.measure_count()) << threads;
      for (int l = 0; l < lhs.level_count(); ++l) {
        for (int64_t r = 0; r < lhs.NumRows(); ++r) {
          ASSERT_EQ(lhs.CoordName(r, l), rhs.CoordName(r, l)) << threads;
        }
      }
      for (int m = 0; m < lhs.measure_count(); ++m) {
        for (int64_t r = 0; r < lhs.NumRows(); ++r) {
          double x = lhs.MeasureAt(r, m), y = rhs.MeasureAt(r, m);
          uint64_t xb = 0, yb = 0;
          std::memcpy(&xb, &x, sizeof(x));
          std::memcpy(&yb, &y, sizeof(y));
          ASSERT_EQ(xb, yb)
              << "threads=" << threads << " row " << r << " measure " << m;
        }
      }
      EXPECT_EQ(lhs.labels(), rhs.labels()) << threads;
    }
  }
}

TEST_F(ParallelEngineTest, ConcurrentQueriesShareOnePool) {
  // The assessd deployment in miniature: many sessions, one pool. Every
  // concurrent query must come back bit-identical to the serial baseline
  // (this test is the TSan workout for the pool's job multiplexing).
  auto pool = std::make_shared<TaskPool>(4);
  CubeQuery q = Query({"c_nation", "s_region"},
                      {{0, 2, PredicateOp::kIn, {"1997", "1998"}}},
                      {"revenue"});
  StarQueryEngine baseline(db_.get(), false, 1);
  const auto expected = BitMap(*baseline.Execute(q), "revenue");

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, -1);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      EngineOptions options;
      options.use_views = false;
      options.use_result_cache = false;
      options.threads = 3;
      options.pool = pool;
      StarQueryEngine engine(db_.get(), options);
      int bad = 0;
      for (int run = 0; run < 3; ++run) {
        auto cube = engine.Execute(q);
        if (!cube.ok() || BitMap(*cube, "revenue") != expected) ++bad;
      }
      mismatches[c] = bad;
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
  EXPECT_EQ(pool->stats().queue_depth, 0u);
}

}  // namespace
}  // namespace assess
