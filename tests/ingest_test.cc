// Streaming ingestion: CSV/JSONL parsing with typed per-line errors, member
// auto-insert with roll-up validation, epoch-stamped atomic batches,
// incremental materialized-view maintenance proven bit-identical to a
// from-scratch rebuild, epoch-keyed result-cache invalidation, packed-width
// repacks under dimension growth, failpoint-driven batch atomicity, snapshot
// isolation under concurrent append/query churn, and the kIngest wire frame
// end to end (including at-most-once retry via the server's dedup store).

#include "ingest/ingestor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "assess/session.h"
#include "client/assess_client.h"
#include "common/failpoint.h"
#include "olap/cube_query.h"
#include "olap/group_by_set.h"
#include "server/assessd.h"
#include "server/protocol.h"
#include "storage/star_query_engine.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;
using ::assess::testutil::K;

/// Aggregates the whole committed fact prefix at `level_names` through the
/// delta-aggregation primitive — the ground truth ingest results are
/// checked against.
Cube AggregateAll(const StarDatabase& db, const BoundCube& bound,
                  const std::vector<std::string>& level_names) {
  StarQueryEngine engine(&db, /*use_views=*/false, /*threads=*/1);
  auto group_by = GroupBySet::FromLevelNames(bound.schema(), level_names);
  EXPECT_TRUE(group_by.ok()) << group_by.status().ToString();
  auto cube = engine.AggregateFactRange(bound, *group_by, 0,
                                        bound.facts().NumRows());
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  return *std::move(cube);
}

class IngestTest : public ::testing::Test {
 protected:
  IngestTest() : mini_(BuildMiniSales()) {
    bound_ = *mini_.db->FindMutable("SALES");
  }

  Result<IngestStats> Ingest(std::string_view text, IngestOptions options = {},
                             std::shared_ptr<CubeResultCache> cache = nullptr) {
    Ingestor ingestor(mini_.db.get(), std::move(cache), options);
    return ingestor.IngestText("SALES", text);
  }

  testutil::MiniDb mini_;
  BoundCube* bound_ = nullptr;
};

TEST_F(IngestTest, CsvRowsLandAndQueriesSeeThem) {
  const int64_t rows_before = bound_->facts().NumRows();
  const uint64_t epoch_before = bound_->facts().epoch();
  auto before = CellMap(AggregateAll(*mini_.db, *bound_, {"product"}),
                        "quantity");

  auto stats = Ingest(
      "date,product,store,quantity,sales\n"
      "1997-07-02,Apple,SmartMart,5,7\n"
      "1997-07-01,Pear,PetitPrix,3,2\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_ingested, 2u);
  EXPECT_EQ(stats->rows_rejected, 0u);
  EXPECT_EQ(stats->batches, 1u);
  EXPECT_EQ(stats->new_members, 0u);
  EXPECT_GT(stats->epoch, epoch_before);
  EXPECT_EQ(stats->epoch, bound_->facts().epoch());
  EXPECT_EQ(bound_->facts().NumRows(), rows_before + 2);

  auto after = CellMap(AggregateAll(*mini_.db, *bound_, {"product"}),
                       "quantity");
  EXPECT_EQ(after[K("Apple")], before[K("Apple")] + 5);
  EXPECT_EQ(after[K("Pear")], before[K("Pear")] + 3);
  EXPECT_EQ(after[K("Lemon")], before[K("Lemon")]);

  // End to end: a fresh session aggregates the appended rows too.
  AssessSession session(mini_.db.get());
  auto result = session.Query(
      "with SALES by product assess quantity labels quartiles");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(CellMap(result->cube, "quantity")[K("Apple")],
            before[K("Apple")] + 5);
}

TEST_F(IngestTest, JsonlRowsLandWithPerRowKeys) {
  auto before = CellMap(AggregateAll(*mini_.db, *bound_, {"store"}), "sales");
  IngestOptions options;
  options.format = IngestFormat::kJsonl;
  auto stats = Ingest(
      R"({"date": "1997-07-01", "product": "milk", "store": "SmartMart",)"
      R"( "quantity": 0, "sales": 11})"
      "\n"
      R"({"store": "PetitPrix", "sales": 4, "quantity": 1,)"
      R"( "product": "Lemon", "date": "1997-07-02"})"
      "\n",
      options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_ingested, 2u);
  auto after = CellMap(AggregateAll(*mini_.db, *bound_, {"store"}), "sales");
  EXPECT_EQ(after[K("SmartMart")], before[K("SmartMart")] + 11);
  EXPECT_EQ(after[K("PetitPrix")], before[K("PetitPrix")] + 4);
}

TEST_F(IngestTest, MalformedCsvProducesTypedLineErrors) {
  const int64_t rows_before = bound_->facts().NumRows();

  // Unknown header column: fatal, nothing ingested.
  auto bad_header = Ingest("date,product,store,quantity,sales,discount\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_EQ(bad_header.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_header.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(bad_header.status().message().find("discount"),
            std::string::npos);

  // Missing required key column in the header.
  auto no_key = Ingest("date,product,quantity,sales\n");
  ASSERT_FALSE(no_key.ok());
  EXPECT_EQ(no_key.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_key.status().message().find("store"), std::string::npos);

  const std::string header = "date,product,store,quantity,sales\n";

  // Unparsable measure carries its 1-based line number.
  auto bad_measure =
      Ingest(header + "1997-07-01,Apple,SmartMart,ten,0\n");
  ASSERT_FALSE(bad_measure.ok());
  EXPECT_EQ(bad_measure.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_measure.status().message().find("line 2"), std::string::npos);

  // Field-count mismatch against the header.
  auto short_row = Ingest(header + "1997-07-01,Apple,SmartMart,1\n");
  ASSERT_FALSE(short_row.ok());
  EXPECT_EQ(short_row.status().code(), StatusCode::kInvalidArgument);

  // Unterminated quoted field.
  auto bad_quote = Ingest(header + "\"1997-07-01,Apple,SmartMart,1,2\n");
  ASSERT_FALSE(bad_quote.ok());
  EXPECT_EQ(bad_quote.status().code(), StatusCode::kInvalidArgument);

  // Unknown member with auto-insert off is kNotFound, not a parse error.
  auto unknown = Ingest(header + "1997-07-01,Durian,SmartMart,1,2\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("Durian"), std::string::npos);

  // Strict mode rejected everything before any commit.
  EXPECT_EQ(bound_->facts().NumRows(), rows_before);

  // max_errors tolerates the bad row and lands the good ones.
  IngestOptions tolerant;
  tolerant.max_errors = 1;
  auto mixed = Ingest(header +
                          "1997-07-01,Apple,SmartMart,1,0\n"
                          "1997-07-01,Durian,SmartMart,1,0\n"
                          "1997-07-02,Pear,PetitPrix,2,0\n",
                      tolerant);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_EQ(mixed->rows_ingested, 2u);
  EXPECT_EQ(mixed->rows_rejected, 1u);
  EXPECT_EQ(bound_->facts().NumRows(), rows_before + 2);
}

TEST_F(IngestTest, MalformedJsonlProducesTypedLineErrors) {
  IngestOptions options;
  options.format = IngestFormat::kJsonl;

  auto not_json = Ingest("this is not json\n", options);
  ASSERT_FALSE(not_json.ok());
  EXPECT_EQ(not_json.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(not_json.status().message().find("line 1"), std::string::npos);

  auto missing_measure = Ingest(
      R"({"date": "1997-07-01", "product": "Apple", "store": "SmartMart",)"
      R"( "quantity": 1})"
      "\n",
      options);
  ASSERT_FALSE(missing_measure.ok());
  EXPECT_EQ(missing_measure.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing_measure.status().message().find("sales"),
            std::string::npos);

  auto unknown_key = Ingest(
      R"({"date": "1997-07-01", "product": "Apple", "store": "SmartMart",)"
      R"( "quantity": 1, "sales": 2, "discount": 3})"
      "\n",
      options);
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_EQ(unknown_key.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown_key.status().message().find("discount"),
            std::string::npos);

  // A null key value means "absent" — for a required key that is an error.
  auto null_key = Ingest(
      R"({"date": null, "product": "Apple", "store": "SmartMart",)"
      R"( "quantity": 1, "sales": 2})"
      "\n",
      options);
  ASSERT_FALSE(null_key.ok());
  EXPECT_EQ(null_key.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IngestTest, AutoInsertGrowsDimensionsAndValidatesRollups) {
  IngestOptions options;
  options.auto_insert_members = true;
  const std::string header = "date,product,type,store,quantity,sales\n";

  auto stats =
      Ingest(header + "1997-07-01,Mango,Fresh Fruit,SmartMart,12,0\n",
             options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_ingested, 1u);
  EXPECT_EQ(stats->new_members, 1u);

  auto by_product =
      CellMap(AggregateAll(*mini_.db, *bound_, {"product"}), "quantity");
  EXPECT_EQ(by_product[K("Mango")], 12);
  // The new member rolls up: type-level aggregation includes it.
  auto by_type = CellMap(AggregateAll(*mini_.db, *bound_, {"type"}),
                         "quantity");
  EXPECT_EQ(by_type[K("Fresh Fruit")], 250 + 200 + 50 + 12);

  // Auto-insert needs the whole roll-up chain.
  auto missing_parent = Ingest(
      "date,product,store,quantity,sales\n"
      "1997-07-01,Papaya,SmartMart,1,0\n",
      options);
  ASSERT_FALSE(missing_parent.ok());
  EXPECT_EQ(missing_parent.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing_parent.status().message().find("type"),
            std::string::npos);

  // An existing member must keep its stored roll-up.
  auto conflict =
      Ingest(header + "1997-07-01,Apple,Dairy,SmartMart,1,0\n", options);
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(conflict.status().message().find("rolls up to"),
            std::string::npos);

  // Same conflict check without auto-insert: provided coarser values are
  // validated against the dictionary.
  auto conflict_stable =
      Ingest(header + "1997-07-01,Apple,Dairy,SmartMart,1,0\n");
  ASSERT_FALSE(conflict_stable.ok());
  EXPECT_EQ(conflict_stable.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IngestTest, IncrementalViewMaintenanceMatchesFromScratchRebuild) {
  StarQueryEngine engine(mini_.db.get(), /*use_views=*/false, /*threads=*/1);
  ASSERT_TRUE(engine
                  .MaterializeView(mini_.db.get(), "SALES",
                                   {"product", "country"}, "pv_pc")
                  .ok());
  ASSERT_TRUE(
      engine.MaterializeView(mini_.db.get(), "SALES", {"month"}, "pv_m")
          .ok());

  // Many small batches: every commit must delta-merge both views.
  IngestOptions options;
  options.batch_rows = 2;
  std::string text = "date,product,store,quantity,sales\n";
  const char* products[] = {"Apple", "Pear", "Lemon", "milk"};
  const char* stores[] = {"SmartMart", "PetitPrix"};
  const char* dates[] = {"1997-07-01", "1997-07-02", "1997-03-15"};
  for (int i = 0; i < 9; ++i) {
    text += std::string(dates[i % 3]) + "," + products[i % 4] + "," +
            stores[i % 2] + "," + std::to_string(i + 1) + "," +
            std::to_string(2 * i) + "\n";
  }
  auto stats = Ingest(text, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_ingested, 9u);
  EXPECT_EQ(stats->batches, 5u);
  EXPECT_EQ(stats->mv_incremental_updates, 2u * stats->batches);
  EXPECT_EQ(stats->mv_full_rebuilds, 0u);

  // The maintained set is stamped at the final epoch and row count.
  std::shared_ptr<const ViewSet> set = bound_->views_snapshot();
  ASSERT_EQ(set->views.size(), 2u);
  EXPECT_EQ(set->epoch, bound_->facts().epoch());
  EXPECT_EQ(set->rows, bound_->facts().NumRows());

  // Bit-identity: each maintained view equals a from-scratch aggregation of
  // the full fact prefix (integer measures, so no FP-order slack needed).
  for (const MaterializedView& view : set->views) {
    auto rebuilt = engine.AggregateFactRange(*bound_, view.group_by, 0,
                                             bound_->facts().NumRows());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ASSERT_EQ(view.data.NumRows(), rebuilt->NumRows()) << view.name;
    for (const char* measure : {"quantity", "sales"}) {
      auto expected = CellMap(*rebuilt, measure);
      auto actual = CellMap(view.data, measure);
      EXPECT_EQ(actual, expected) << view.name << " " << measure;
    }
  }

  // And queries answered *from* the maintained views match fact scans.
  StarQueryEngine with_views(mini_.db.get(), /*use_views=*/true,
                             /*threads=*/1);
  auto query = CubeQuery::Make(*mini_.schema, "SALES",
                               {"product", "country"}, {}, {"sales"});
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto from_views = with_views.Execute(*query);
  ASSERT_TRUE(from_views.ok()) << from_views.status().ToString();
  EXPECT_TRUE(with_views.last_used_view());
  auto from_facts = AggregateAll(*mini_.db, *bound_, {"product", "country"});
  EXPECT_EQ(CellMap(*from_views, "sales"), CellMap(from_facts, "sales"));
}

TEST_F(IngestTest, FullRebuildBaselineRebuildsEveryBatch) {
  StarQueryEngine engine(mini_.db.get(), /*use_views=*/false, /*threads=*/1);
  ASSERT_TRUE(
      engine.MaterializeView(mini_.db.get(), "SALES", {"product"}, "pv")
          .ok());
  IngestOptions options;
  options.incremental = false;
  options.batch_rows = 1;
  auto stats = Ingest(
      "date,product,store,quantity,sales\n"
      "1997-07-01,Apple,SmartMart,1,0\n"
      "1997-07-02,Pear,PetitPrix,2,0\n",
      options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->mv_full_rebuilds, 2u);
  EXPECT_EQ(stats->mv_incremental_updates, 0u);

  std::shared_ptr<const ViewSet> set = bound_->views_snapshot();
  auto rebuilt = engine.AggregateFactRange(
      *bound_, set->views[0].group_by, 0, bound_->facts().NumRows());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(CellMap(set->views[0].data, "quantity"),
            CellMap(*rebuilt, "quantity"));
}

TEST_F(IngestTest, EpochKeyingInvalidatesCachedResults) {
  auto cache = std::make_shared<CubeResultCache>(CacheOptions{});
  EngineOptions engine_options;
  engine_options.shared_cache = cache;
  AssessSession session(mini_.db.get(), engine_options);
  const char* statement =
      "with SALES by product assess quantity labels quartiles";

  auto first = session.Query(statement);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = session.Query(statement);
  ASSERT_TRUE(second.ok());
  CacheStats warm = cache->stats();
  EXPECT_GE(warm.exact_hits, 1u);
  ASSERT_GT(warm.entries, 0u);

  auto stats = Ingest(
      "date,product,store,quantity,sales\n"
      "1997-07-01,Apple,SmartMart,100,0\n",
      {}, cache);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The eager sweep reclaimed every pre-ingest entry of this cube.
  EXPECT_EQ(stats->cache_invalidations, warm.entries);
  EXPECT_GE(cache->stats().epoch_invalidations, warm.entries);

  // Same statement at the new epoch: a miss, and the fresh result includes
  // the appended rows (a stale hit would miss the +100).
  const uint64_t misses_before = cache->stats().misses;
  auto third = session.Query(statement);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_GT(cache->stats().misses, misses_before);
  EXPECT_EQ(CellMap(third->cube, "quantity")[K("Apple")],
            CellMap(first->cube, "quantity")[K("Apple")] + 100);
}

TEST_F(IngestTest, DimensionGrowthOverflowsPackedWidthAndRepacks) {
  // Build the derived accelerators first, so appends extend them and the
  // width-tier overflow path (not the initial build) is what repacks.
  FactSnapshot snap = bound_->facts().SnapshotWithDerived();
  ASSERT_NE(snap.derived, nullptr);
  const uint64_t repacks_before = bound_->facts().derived_repacks();

  // 300 new products push the product FK past the 8-bit packed tier.
  IngestOptions options;
  options.auto_insert_members = true;
  options.batch_rows = 64;
  std::string text = "date,product,type,store,quantity,sales\n";
  for (int i = 0; i < 300; ++i) {
    text += "1997-07-01,sku-" + std::to_string(i) + ",Bulk,SmartMart,1,1\n";
  }
  auto stats = Ingest(text, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_ingested, 300u);
  EXPECT_EQ(stats->new_members, 300u);
  EXPECT_GE(stats->repacks, 1u);
  EXPECT_GE(bound_->facts().derived_repacks(), repacks_before + 1);

  // Scans through the repacked columns still aggregate correctly.
  auto by_type = CellMap(AggregateAll(*mini_.db, *bound_, {"type"}),
                         "quantity");
  EXPECT_EQ(by_type[K("Bulk")], 300);
}

TEST_F(IngestTest, CommitFailpointKeepsCommittedBatchesAndDropsTheRest) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.DisarmAll();

  // A committed batch survives a later ingest failing at its commit: the
  // failed run's staged rows vanish, the earlier epoch's rows do not.
  IngestOptions options;
  options.batch_rows = 2;
  auto committed = Ingest(
      "date,product,store,quantity,sales\n"
      "1997-07-01,Apple,SmartMart,1,0\n"
      "1997-07-01,Pear,SmartMart,1,0\n",
      options);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  const int64_t rows_committed = bound_->facts().NumRows();
  const uint64_t epoch_committed = bound_->facts().epoch();

  ASSERT_TRUE(
      registry.ArmFromString("ingest.commit=error(unavailable):budget=1")
          .ok());
  auto stats = Ingest(
      "date,product,store,quantity,sales\n"
      "1997-07-01,Lemon,SmartMart,1,0\n"
      "1997-07-02,Apple,PetitPrix,1,0\n"
      "1997-07-02,Pear,PetitPrix,1,0\n",
      options);
  registry.DisarmAll();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  // The failing commit was atomic: no rows, no epoch bump.
  EXPECT_EQ(bound_->facts().NumRows(), rows_committed);
  EXPECT_EQ(bound_->facts().epoch(), epoch_committed);

  // Row-level failpoint: rejected rows count against max_errors and the
  // remainder lands.
  ASSERT_TRUE(
      registry
          .ArmFromString("ingest.row=error(invalid_argument):budget=2")
          .ok());
  IngestOptions tolerant;
  tolerant.max_errors = 2;
  auto chaos = Ingest(
      "date,product,store,quantity,sales\n"
      "1997-07-01,Apple,SmartMart,1,0\n"
      "1997-07-01,Pear,SmartMart,1,0\n"
      "1997-07-01,Lemon,SmartMart,1,0\n",
      tolerant);
  registry.DisarmAll();
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  EXPECT_EQ(chaos->rows_rejected, 2u);
  EXPECT_EQ(chaos->rows_ingested, 1u);
}

TEST_F(IngestTest, SnapshotIsolationUnderConcurrentAppendAndQuery) {
  // Two appenders stream member-stable batches while readers aggregate
  // concurrently. Batch atomicity means every observed total quantity is a
  // whole number of batches past the base; monotonicity per reader means no
  // reader ever sees a commit un-happen. Afterwards, the merged state must
  // be bit-identical to a serial replay into a fresh database.
  const auto base =
      CellMap(AggregateAll(*mini_.db, *bound_, {"product"}), "quantity");
  double base_total = 0;
  for (const auto& [coord, v] : base) base_total += v;

  constexpr int kAppenders = 2;
  constexpr int kRowsPerAppender = 120;  // 15 batches of 8 rows each
  constexpr int kBatchRows = 8;
  const char* products[] = {"Apple", "Pear", "Lemon", "milk"};
  const char* stores[] = {"SmartMart", "PetitPrix"};
  auto appender_text = [&](int a) {
    std::string text = "date,product,store,quantity,sales\n";
    for (int i = 0; i < kRowsPerAppender; ++i) {
      text += std::string("1997-07-0") + (a == 0 ? "1" : "2") + "," +
              products[i % 4] + "," + stores[(a + i) % 2] + ",1,0\n";
    }
    return text;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      StarQueryEngine engine(mini_.db.get(), /*use_views=*/false,
                             /*threads=*/1);
      auto group_by =
          GroupBySet::FromLevelNames(bound_->schema(), {"product"});
      double prev_total = base_total;
      while (!stop.load(std::memory_order_relaxed)) {
        auto cube =
            engine.AggregateFactRange(*bound_, *group_by, 0,
                                      bound_->facts().NumRows());
        if (!cube.ok()) {
          violations.fetch_add(1);
          break;
        }
        double total = 0;
        auto cells = CellMap(*cube, "quantity");
        for (const auto& [coord, v] : cells) total += v;
        const double delta = total - base_total;
        // Atomic batches: the appended quantity is a multiple of the batch
        // size (each appended row carries quantity 1).
        if (delta < 0 ||
            static_cast<int64_t>(delta) % kBatchRows != 0 ||
            total < prev_total) {
          violations.fetch_add(1);
        }
        prev_total = total;
      }
    });
  }

  std::vector<std::thread> appenders;
  std::vector<Status> append_status(kAppenders, Status::OK());
  for (int a = 0; a < kAppenders; ++a) {
    appenders.emplace_back([&, a] {
      IngestOptions options;
      options.batch_rows = kBatchRows;
      Ingestor ingestor(mini_.db.get(), nullptr, options);
      auto stats = ingestor.IngestText("SALES", appender_text(a));
      if (!stats.ok()) append_status[a] = stats.status();
    });
  }
  for (auto& t : appenders) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  for (const Status& st : append_status) {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_EQ(violations.load(), 0);

  // Serial replay: the same rows into a fresh MiniDb, one appender.
  testutil::MiniDb serial = BuildMiniSales();
  IngestOptions options;
  options.batch_rows = kBatchRows;
  Ingestor replay(serial.db.get(), nullptr, options);
  for (int a = 0; a < kAppenders; ++a) {
    ASSERT_TRUE(replay.IngestText("SALES", appender_text(a)).ok());
  }
  const BoundCube* serial_bound = *serial.db->Find("SALES");
  for (const char* measure : {"quantity", "sales"}) {
    EXPECT_EQ(
        CellMap(AggregateAll(*mini_.db, *bound_, {"product", "store"}),
                measure),
        CellMap(AggregateAll(*serial.db, *serial_bound,
                             {"product", "store"}),
                measure))
        << measure;
  }
}

// --- kIngest over the wire ------------------------------------------------

class WireIngestTest : public ::testing::Test {
 protected:
  WireIngestTest() : mini_(BuildMiniSales()) {}

  std::unique_ptr<AssessServer> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<AssessServer>(mini_.db.get(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  testutil::MiniDb mini_;
};

TEST_F(WireIngestTest, ReadOnlyServerRefusesIngest) {
  auto server = StartServer();
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  auto stats = client->Ingest(
      "SALES",
      "date,product,store,quantity,sales\n1997-07-01,Apple,SmartMart,1,0\n");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotSupported);
}

TEST_F(WireIngestTest, IngestRoundTripUpdatesServedResults) {
  ServerOptions options;
  options.mutable_db = mini_.db.get();
  auto server = StartServer(options);
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  const char* statement =
      "with SALES by product assess quantity labels quartiles";
  auto before = client->Query(statement);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  auto stats = client->Ingest(
      "SALES",
      "date,product,store,quantity,sales\n"
      "1997-07-01,Apple,SmartMart,25,0\n"
      "1997-07-02,Pear,PetitPrix,5,0\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_ingested, 2u);
  EXPECT_EQ(stats->batches, 1u);

  auto after = client->Query(statement);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(CellMap(after->cube, "quantity")[K("Apple")],
            CellMap(before->cube, "quantity")[K("Apple")] + 25);

  // Typed errors round-trip too (no auto-insert on this server).
  auto unknown = client->Ingest(
      "SALES",
      "date,product,store,quantity,sales\n"
      "1997-07-01,Durian,SmartMart,1,0\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // A client asking for auto-insert cannot widen a server that forbids it.
  auto widened = client->Ingest(
      "SALES",
      "date,product,type,store,quantity,sales\n"
      "1997-07-01,Durian,Fresh Fruit,SmartMart,1,0\n",
      IngestFormat::kCsv, /*auto_insert=*/true);
  ASSERT_FALSE(widened.ok());
  EXPECT_EQ(widened.status().code(), StatusCode::kNotFound);

  // v4 stats carry the ingest counters.
  auto server_stats = client->Stats();
  ASSERT_TRUE(server_stats.ok());
  EXPECT_EQ(server_stats->ingest_rows, 2u);
  EXPECT_EQ(server_stats->ingest_batches, 1u);
}

TEST_F(WireIngestTest, RetriedIngestReplaysItsReceiptInsteadOfAppending) {
  ServerOptions options;
  options.mutable_db = mini_.db.get();
  auto server = StartServer(options);

  auto fd = ConnectTo("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  const std::string payload = EncodeIngestPayload(
      /*request_id=*/0xABCDEF01u, "SALES", IngestFormat::kCsv, 0,
      "date,product,store,quantity,sales\n"
      "1997-07-01,Apple,SmartMart,9,0\n");
  const BoundCube* bound = *mini_.db->Find("SALES");
  const int64_t rows_before = bound->facts().NumRows();

  Frame first_reply;
  ASSERT_TRUE(WriteFrame(*fd, FrameType::kIngest, payload).ok());
  ASSERT_TRUE(ReadFrame(*fd, kDefaultMaxFrameBytes, &first_reply).ok());
  ASSERT_EQ(first_reply.type, FrameType::kIngestReply);
  EXPECT_EQ(bound->facts().NumRows(), rows_before + 1);

  // Same request id again (a retry after a lost response): the stored
  // receipt comes back byte-identical and no second append happens.
  Frame second_reply;
  ASSERT_TRUE(WriteFrame(*fd, FrameType::kIngest, payload).ok());
  ASSERT_TRUE(ReadFrame(*fd, kDefaultMaxFrameBytes, &second_reply).ok());
  EXPECT_EQ(second_reply.type, FrameType::kIngestReply);
  EXPECT_EQ(second_reply.payload, first_reply.payload);
  EXPECT_EQ(bound->facts().NumRows(), rows_before + 1);

  auto stats = IngestStats::Deserialize(first_reply.payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_ingested, 1u);
  CloseSocket(*fd);
}

TEST_F(WireIngestTest, MalformedIngestFramesAreTypedErrors) {
  ServerOptions options;
  options.mutable_db = mini_.db.get();
  auto server = StartServer(options);
  auto fd = ConnectTo("127.0.0.1", server->port(), 2'000);
  ASSERT_TRUE(fd.ok());

  // Truncated header: too short for request id + cube length.
  Frame reply;
  ASSERT_TRUE(WriteFrame(*fd, FrameType::kIngest, "short").ok());
  ASSERT_TRUE(ReadFrame(*fd, kDefaultMaxFrameBytes, &reply).ok());
  EXPECT_EQ(reply.type, FrameType::kError);
  CloseSocket(*fd);

  // Unknown format byte.
  uint64_t id = 0;
  std::string_view cube, text;
  IngestFormat format = IngestFormat::kCsv;
  uint8_t flags = 0;
  std::string bad = EncodeIngestPayload(1, "SALES", IngestFormat::kCsv, 0, "");
  bad[10 + 5] = 0x7F;  // format byte, after 8(id) + 2(len) + 5("SALES")
  Status decoded = DecodeIngestPayload(bad, &id, &cube, &format, &flags,
                                       &text);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);

  // Codec round trip for both formats and the flag byte.
  std::string good = EncodeIngestPayload(42, "SALES", IngestFormat::kJsonl,
                                         kIngestFlagAutoInsert, "{}\n");
  ASSERT_TRUE(
      DecodeIngestPayload(good, &id, &cube, &format, &flags, &text).ok());
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(cube, "SALES");
  EXPECT_EQ(format, IngestFormat::kJsonl);
  EXPECT_EQ(flags, kIngestFlagAutoInsert);
  EXPECT_EQ(text, "{}\n");
}

TEST(IngestStatsTest, SerializeRoundTripsAndV4StatsDecode) {
  IngestStats stats;
  stats.rows_ingested = 1000;
  stats.rows_rejected = 3;
  stats.batches = 17;
  stats.new_members = 5;
  stats.epoch = 42;
  stats.mv_incremental_updates = 34;
  stats.mv_full_rebuilds = 1;
  stats.cache_invalidations = 9;
  stats.repacks = 2;
  auto decoded = IngestStats::Deserialize(stats.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->rows_ingested, 1000u);
  EXPECT_EQ(decoded->rows_rejected, 3u);
  EXPECT_EQ(decoded->batches, 17u);
  EXPECT_EQ(decoded->new_members, 5u);
  EXPECT_EQ(decoded->epoch, 42u);
  EXPECT_EQ(decoded->mv_incremental_updates, 34u);
  EXPECT_EQ(decoded->mv_full_rebuilds, 1u);
  EXPECT_EQ(decoded->cache_invalidations, 9u);
  EXPECT_EQ(decoded->repacks, 2u);
  EXPECT_FALSE(IngestStats::Deserialize("truncated").ok());

  ServerStats server_stats;
  server_stats.ingest_rows = 7;
  server_stats.ingest_batches = 2;
  server_stats.cache_epoch_invalidations = 11;
  auto round = ServerStats::Deserialize(server_stats.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->ingest_rows, 7u);
  EXPECT_EQ(round->ingest_batches, 2u);
  EXPECT_EQ(round->cache_epoch_invalidations, 11u);
}

}  // namespace
}  // namespace assess
