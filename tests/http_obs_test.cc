// The observability HTTP endpoint and trace-id propagation: raw-socket GETs
// against /metrics, /healthz (503 during drain), /workload and /traces,
// malformed-request handling, the obs.profile failpoint, and the end-to-end
// join between the client's trace id, the slow-query log and /traces.

#include "server/http_obs.h"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/assess_client.h"
#include "common/failpoint.h"
#include "obs/trace.h"
#include "server/assessd.h"
#include "server/protocol.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

const char* kStatement =
    "with SALES by month assess sales against 10 labels quartiles";

std::string TraceHex(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Sends raw bytes to the HTTP port and returns everything the server wrote
/// before closing — status line, headers and body in one string.
std::string RawHttp(uint16_t port, const std::string& request) {
  auto fd = ConnectTo("127.0.0.1", port, /*timeout_ms=*/2000);
  if (!fd.ok()) return "connect failed: " + fd.status().ToString();
  std::string out;
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(*fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  // Half-close: a truncated request reaches the server as EOF instead of
  // parking its single serving thread on the receive timeout.
  ::shutdown(*fd, SHUT_WR);
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(*fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  CloseSocket(*fd);
  return out;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawHttp(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

class HttpObsTest : public ::testing::Test {
 protected:
  HttpObsTest() : mini_(BuildMiniSales()) {}

  std::unique_ptr<AssessServer> StartServer(ServerOptions options = {}) {
    options.http_port = 0;  // ephemeral
    auto server = std::make_unique<AssessServer>(mini_.db.get(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_GT(server->http_port(), 0);
    return server;
  }

  AssessClient ConnectOrDie(const AssessServer& server,
                            ClientOptions options = {}) {
    auto client =
        AssessClient::Connect("127.0.0.1", server.port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  testutil::MiniDb mini_;
};

TEST_F(HttpObsTest, MetricsEndpointServesPrometheusText) {
  auto server = StartServer();
  AssessClient client = ConnectOrDie(*server);
  ASSERT_TRUE(client.Query(kStatement).ok());

  std::string response = Get(server->http_port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE assessd_requests_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE assessd_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE assessd_workload_fingerprints gauge"),
            std::string::npos);
  EXPECT_NE(response.find("assessd_workload_queries_total 1"),
            std::string::npos);

  // The request counter counts HTTP requests (including the in-flight one),
  // visible on the next scrape and in the stats frame.
  std::string again = Get(server->http_port(), "/metrics");
  EXPECT_NE(again.find("assessd_http_requests_total 2"), std::string::npos);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->http_requests, 2u);
  EXPECT_EQ(stats->workload_fingerprints, 1u);
}

TEST_F(HttpObsTest, WorkloadEndpointServesAdvisorJson) {
  auto server = StartServer();
  AssessClient client = ConnectOrDie(*server);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Query(kStatement).ok());
  }
  std::string response = Get(server->http_port(), "/workload");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"fingerprints\": 1"), std::string::npos);
  EXPECT_NE(response.find("\"total_queries\": 3"), std::string::npos);
  EXPECT_NE(response.find("\"recommendations\": ["), std::string::npos);

  // Same profile over the wire protocol, rendered as text.
  auto text = client.Workload();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("workload profile: 1 fingerprints"),
            std::string::npos);
}

TEST_F(HttpObsTest, WorkloadKillSwitchProfilesNothing) {
  ServerOptions options;
  options.workload_profile = false;
  auto server = StartServer(options);
  AssessClient client = ConnectOrDie(*server);
  ASSERT_TRUE(client.Query(kStatement).ok());
  std::string response = Get(server->http_port(), "/workload");
  EXPECT_NE(response.find("\"fingerprints\": 0"), std::string::npos);
  EXPECT_NE(response.find("\"total_queries\": 0"), std::string::npos);
}

TEST_F(HttpObsTest, MalformedAndUnknownRequestsGetTypedErrors) {
  auto server = StartServer();
  const uint16_t port = server->http_port();
  EXPECT_NE(Get(port, "/nope").find("HTTP/1.0 404 Not Found"),
            std::string::npos);
  EXPECT_NE(RawHttp(port, "BOGUS\r\n\r\n").find("HTTP/1.0 400 Bad Request"),
            std::string::npos);
  EXPECT_NE(RawHttp(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .find("HTTP/1.0 400 Bad Request"),
            std::string::npos);
  EXPECT_NE(RawHttp(port, "GET /metrics\r\n\r\n")
                .find("HTTP/1.0 400 Bad Request"),
            std::string::npos);
  // Truncated request (no header terminator): the server answers 400 when
  // the peer gives up rather than hanging.
  EXPECT_NE(RawHttp(port, "GET /metri").find("HTTP/1.0 400 Bad Request"),
            std::string::npos);
  // The listener survives all of that.
  EXPECT_NE(Get(port, "/healthz").find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST_F(HttpObsTest, HealthzAnswers503DuringDrain) {
  ServerOptions options;
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  };
  auto server = StartServer(options);
  const uint16_t http_port = server->http_port();
  EXPECT_NE(Get(http_port, "/healthz").find("HTTP/1.0 200 OK"),
            std::string::npos);

  std::atomic<bool> query_sent{false};
  std::thread slow_client([&] {
    auto client = AssessClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    query_sent.store(true);
    EXPECT_TRUE(client->Query(kStatement).ok());
  });
  while (!query_sent.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread stopper([&] { server->Stop(); });
  // The HTTP listener is stopped LAST in Stop(), so /healthz keeps
  // answering — with 503 — while the in-flight query drains.
  bool saw_draining = false;
  for (int i = 0; i < 200 && !saw_draining; ++i) {
    std::string response = Get(http_port, "/healthz");
    if (response.find("503 Service Unavailable") != std::string::npos) {
      saw_draining = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stopper.join();
  slow_client.join();
  EXPECT_TRUE(saw_draining);
}

TEST_F(HttpObsTest, ObsProfileFailpointNeverFailsQueries) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto server = StartServer();
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmFromString("obs.profile=error").ok());
  AssessClient client = ConnectOrDie(*server);
  for (int i = 0; i < 4; ++i) {
    auto r = client.Query(kStatement);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  FailpointRegistry::Instance().DisarmAll();
  // Dropped samples are visible, and the profile stayed empty — the broken
  // profiler moved a counter, nothing else. The endpoint still serves.
  std::string response = Get(server->http_port(), "/workload");
  EXPECT_NE(response.find("\"fingerprints\": 0"), std::string::npos);
  std::string metrics = Get(server->http_port(), "/metrics");
  EXPECT_NE(metrics.find("assessd_workload_dropped_samples_total 4"),
            std::string::npos);
}

TEST_F(HttpObsTest, TraceIdJoinsClientSlowQueryLogAndTraceRing) {
  if (!kTracingCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_TRACING=OFF";
  }
  ServerOptions options;
  options.slow_query_ms = 0;  // every traced query is "slow"
  std::mutex log_mutex;
  std::vector<std::string> slow_lines;
  options.slow_query_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mutex);
    slow_lines.push_back(line);
  };
  auto server = StartServer(options);

  ClientOptions client_options;
  client_options.seed = 42;  // deterministic trace ids
  AssessClient client = ConnectOrDie(*server, client_options);
  ASSERT_TRUE(client.Query(kStatement).ok());
  ASSERT_NE(client.last_trace_id(), 0u);
  const std::string hex = TraceHex(client.last_trace_id());

  // 1. The slow-query log line leads with request id + trace id.
  {
    std::lock_guard<std::mutex> lock(log_mutex);
    ASSERT_EQ(slow_lines.size(), 1u);
    EXPECT_NE(slow_lines[0].find("[assessd] slow query request="),
              std::string::npos);
    EXPECT_NE(slow_lines[0].find("trace=" + hex), std::string::npos);
  }

  // 2. /traces carries the same id as the root of a span tree.
  std::string traces = Get(server->http_port(), "/traces");
  EXPECT_NE(traces.find("\"trace_id\":\"" + hex + "\""), std::string::npos);
  EXPECT_NE(traces.find("\"traceEvents\""), std::string::npos);

  // 3. The stats frame counts the traced frame.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->trace_ids_received, 1u);

  // 4. EXPLAIN ANALYZE stamps its own id into the rendered report.
  auto analyzed = client.ExplainAnalyze(kStatement);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("trace: " + TraceHex(client.last_trace_id())),
            std::string::npos);
  // ...and the profiler surfaces the lattice node + seen count in it.
  EXPECT_NE(analyzed->find("lattice"), std::string::npos);
}

TEST_F(HttpObsTest, ErrorRepliesCarryTheTraceId) {
  auto server = StartServer();
  ClientOptions client_options;
  client_options.seed = 7;
  AssessClient client = ConnectOrDie(*server, client_options);
  auto bad = client.Query("with NOPE by month assess sales labels quartiles");
  ASSERT_FALSE(bad.ok());
  ASSERT_NE(client.last_trace_id(), 0u);
  EXPECT_NE(bad.status().message().find(
                "trace " + TraceHex(client.last_trace_id())),
            std::string::npos);
}

TEST_F(HttpObsTest, UntracedClientStillWorks) {
  auto server = StartServer();
  ClientOptions client_options;
  client_options.trace_ids = false;  // pre-trace wire shape: no flag bit
  AssessClient client = ConnectOrDie(*server, client_options);
  ASSERT_TRUE(client.Query(kStatement).ok());
  EXPECT_EQ(client.last_trace_id(), 0u);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->trace_ids_received, 0u);
}

}  // namespace
}  // namespace assess
