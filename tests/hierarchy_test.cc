#include "olap/hierarchy.h"

#include <gtest/gtest.h>

namespace assess {
namespace {

Hierarchy MakeGeo() {
  Hierarchy h("Store");
  h.AddLevel("store");
  h.AddLevel("city");
  h.AddLevel("country");
  MemberId italy = h.AddMember(2, "Italy");
  MemberId rome = h.AddMember(1, "Rome");
  h.SetParent(1, rome, italy);
  MemberId smart = h.AddMember(0, "SmartMart");
  h.SetParent(0, smart, rome);
  return h;
}

TEST(HierarchyTest, LevelsInRollUpOrder) {
  Hierarchy h = MakeGeo();
  EXPECT_EQ(h.level_count(), 3);
  EXPECT_EQ(h.level_name(0), "store");
  EXPECT_EQ(h.level_name(2), "country");
  EXPECT_EQ(*h.LevelIndex("city"), 1);
  EXPECT_TRUE(h.HasLevel("store"));
  EXPECT_FALSE(h.HasLevel("region"));
  EXPECT_FALSE(h.LevelIndex("region").ok());
}

TEST(HierarchyTest, MembersAreInternedIdempotently) {
  Hierarchy h = MakeGeo();
  MemberId rome1 = h.AddMember(1, "Rome");
  MemberId rome2 = h.AddMember(1, "Rome");
  EXPECT_EQ(rome1, rome2);
  EXPECT_EQ(h.LevelCardinality(1), 1);
  EXPECT_EQ(*h.MemberIdOf(1, "Rome"), rome1);
  EXPECT_EQ(h.MemberName(1, rome1), "Rome");
  EXPECT_FALSE(h.MemberIdOf(1, "Paris").ok());
}

TEST(HierarchyTest, RollUpWalksTheChain) {
  Hierarchy h = MakeGeo();
  MemberId smart = *h.MemberIdOf(0, "SmartMart");
  EXPECT_EQ(h.MemberName(1, h.RollUpMember(0, smart, 1)), "Rome");
  EXPECT_EQ(h.MemberName(2, h.RollUpMember(0, smart, 2)), "Italy");
  // rup_G(gamma) = gamma for the same level.
  EXPECT_EQ(h.RollUpMember(0, smart, 0), smart);
}

TEST(HierarchyTest, RollUpWithMissingLinkIsInvalid) {
  Hierarchy h("H");
  h.AddLevel("a");
  h.AddLevel("b");
  MemberId orphan = h.AddMember(0, "orphan");
  EXPECT_EQ(h.RollUpMember(0, orphan, 1), kInvalidMember);
}

TEST(HierarchyTest, ValidateAcceptsCompleteMapping) {
  EXPECT_TRUE(MakeGeo().Validate().ok());
}

TEST(HierarchyTest, ValidateRejectsOrphans) {
  Hierarchy h("H");
  h.AddLevel("a");
  h.AddLevel("b");
  h.AddMember(0, "orphan");
  Status st = h.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("orphan"), std::string::npos);
}

TEST(HierarchyTest, CoarsestLevelNeedsNoParents) {
  Hierarchy h("H");
  h.AddLevel("only");
  h.AddMember(0, "x");
  EXPECT_TRUE(h.Validate().ok());
}

TEST(HierarchyTest, TemporalFlag) {
  Hierarchy h("Date");
  EXPECT_FALSE(h.temporal());
  h.set_temporal(true);
  EXPECT_TRUE(h.temporal());
}

TEST(HierarchyTest, PartOfIsFunctional) {
  // Every member of a finer level maps to exactly one coarser member, and
  // SetParent overwrites rather than multiplying.
  Hierarchy h("H");
  h.AddLevel("a");
  h.AddLevel("b");
  MemberId b1 = h.AddMember(1, "b1");
  MemberId b2 = h.AddMember(1, "b2");
  MemberId a = h.AddMember(0, "a");
  h.SetParent(0, a, b1);
  h.SetParent(0, a, b2);
  EXPECT_EQ(h.RollUpMember(0, a, 1), b2);
}

}  // namespace
}  // namespace assess
