#include "sqlgen/sql_generator.h"

#include <gtest/gtest.h>

#include "assess/analyzer.h"
#include "assess/parser.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

class SqlGenTest : public ::testing::Test {
 protected:
  SqlGenTest()
      : mini_(BuildMiniSales()),
        functions_(FunctionRegistry::Default()),
        labelings_(LabelingRegistry::Default()),
        gen_(mini_.schema.get()) {}

  AnalyzedStatement Must(const std::string& text) {
    auto stmt = ParseAssessStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto analyzed = Analyze(*stmt, *mini_.db, functions_, labelings_);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  testutil::MiniDb mini_;
  FunctionRegistry functions_;
  LabelingRegistry labelings_;
  SqlGenerator gen_;
};

TEST_F(SqlGenTest, GetHasListing1Shape) {
  AnalyzedStatement a = Must(
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity labels quartiles");
  std::string sql = *gen_.RenderGet(a.target);
  EXPECT_NE(sql.find("select product, country, sum(quantity) as quantity"),
            std::string::npos);
  EXPECT_NE(sql.find("from sales f"), std::string::npos);
  EXPECT_NE(sql.find("join product p on p.pkey = f.pkey"), std::string::npos);
  EXPECT_NE(sql.find("join store s on s.skey = f.skey"), std::string::npos);
  EXPECT_NE(sql.find("where type = 'Fresh Fruit' and country = 'Italy'"),
            std::string::npos);
  EXPECT_NE(sql.find("group by product, country"), std::string::npos);
  // The untouched Date dimension is not joined.
  EXPECT_EQ(sql.find("join date"), std::string::npos);
}

TEST_F(SqlGenTest, GetWithoutPredicatesHasNoWhere) {
  AnalyzedStatement a =
      Must("with SALES by month assess sales labels quartiles");
  std::string sql = *gen_.RenderGet(a.target);
  EXPECT_EQ(sql.find("where"), std::string::npos);
  EXPECT_NE(sql.find("join date d on d.dkey = f.dkey"), std::string::npos);
}

TEST_F(SqlGenTest, ApexQueryHasNoGroupBy) {
  AnalyzedStatement a = Must("with SALES by month assess sales labels "
                             "quartiles");
  CubeQuery apex = a.target;
  apex.group_by = GroupBySet(mini_.schema->hierarchy_count());
  std::string sql = *gen_.RenderGet(apex);
  EXPECT_EQ(sql.find("group by"), std::string::npos);
}

TEST_F(SqlGenTest, InAndBetweenRendering) {
  AnalyzedStatement a = Must(
      "with SALES for country in ('Italy', 'France'), "
      "month between '1997-03' and '1997-06' "
      "by product assess quantity labels quartiles");
  std::string sql = *gen_.RenderGet(a.target);
  EXPECT_NE(sql.find("country in ('Italy', 'France')"), std::string::npos);
  EXPECT_NE(sql.find("month between '1997-03' and '1997-06'"),
            std::string::npos);
}

TEST_F(SqlGenTest, JoinHasListing4Shape) {
  AnalyzedStatement a = Must(
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "labels quartiles");
  std::string sql =
      *gen_.RenderJoin(a.target, gen_, a.benchmark, a.join_levels, false);
  EXPECT_NE(sql.find("select t1.product, t1.country, t1.quantity, "
                     "t2.quantity as bc_quantity"),
            std::string::npos);
  EXPECT_NE(sql.find("country = 'Italy'"), std::string::npos);
  EXPECT_NE(sql.find("country = 'France'"), std::string::npos);
  EXPECT_NE(sql.find(") t1"), std::string::npos);
  EXPECT_NE(sql.find(") t2"), std::string::npos);
  EXPECT_NE(sql.find("on t1.product = t2.product"), std::string::npos);
  EXPECT_EQ(sql.find("left join"), std::string::npos);
}

TEST_F(SqlGenTest, OuterJoinForAssessStar) {
  AnalyzedStatement a = Must(
      "with SALES for country = 'Italy' by product, country "
      "assess* quantity against country = 'France' labels quartiles");
  std::string sql =
      *gen_.RenderJoin(a.target, gen_, a.benchmark, a.join_levels, true);
  EXPECT_NE(sql.find("left join"), std::string::npos);
}

TEST_F(SqlGenTest, PivotHasListing5Shape) {
  AnalyzedStatement a = Must(
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "labels quartiles");
  CubeQuery all = a.target;
  for (Predicate& p : all.predicates) {
    if (p.members == std::vector<std::string>{"Italy"}) {
      p.op = PredicateOp::kIn;
      p.members = {"Italy", "France"};
    }
  }
  std::string sql =
      *gen_.RenderPivot(all, "country", "Italy", {"France"}, true);
  EXPECT_NE(sql.find("select 'Italy' as country, product, quantity, "
                     "bc_quantity"),
            std::string::npos);
  EXPECT_NE(sql.find("country in ('Italy', 'France')"), std::string::npos);
  EXPECT_NE(sql.find("pivot (sum(quantity) for country"), std::string::npos);
  EXPECT_NE(sql.find("in ('Italy' as quantity, 'France' as bc_quantity)"),
            std::string::npos);
  EXPECT_NE(sql.find("where quantity is not null and bc_quantity is not "
                     "null"),
            std::string::npos);
}

TEST_F(SqlGenTest, PivotWithoutCompletenessFilter) {
  AnalyzedStatement a = Must(
      "with SALES for country = 'Italy' by product, country "
      "assess quantity against country = 'France' labels quartiles");
  std::string sql =
      *gen_.RenderPivot(a.target, "country", "Italy", {"France"}, false);
  EXPECT_EQ(sql.find("is not null"), std::string::npos);
}

TEST_F(SqlGenTest, PivotNumbersMultipleSlices) {
  AnalyzedStatement a = Must(
      "with SALES for month = '1997-07', store = 'SmartMart' "
      "by month, store assess sales against past 2 labels quartiles");
  std::string sql = *gen_.RenderPivot(a.benchmark, "month", "1997-06",
                                      {"1997-04", "1997-05"}, true);
  EXPECT_NE(sql.find("bc_sales_1"), std::string::npos);
  EXPECT_NE(sql.find("bc_sales_2"), std::string::npos);
}

}  // namespace
}  // namespace assess
