#include "assess/executor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "assess/session.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;
using ::assess::testutil::K;
using ::assess::testutil::LabelMap;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : mini_(BuildMiniSales()), session_(mini_.db.get()) {}

  AssessResult Run(const std::string& text, PlanKind plan) {
    auto result = session_.Query(text, plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  testutil::MiniDb mini_;
  AssessSession session_;
};

constexpr const char* kSiblingStatement =
    "with SALES for type = 'Fresh Fruit', country = 'Italy' "
    "by product, country assess quantity against country = 'France' "
    "using percOfTotal(difference(quantity, benchmark.quantity), quantity) "
    "labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}";

constexpr const char* kPastStatement =
    "with SALES for month = '1997-07' by month, store "
    "assess sales against past 4 "
    "using ratio(sales, benchmark.sales) "
    "labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}";

// --- Constant ---------------------------------------------------------------

TEST_F(ExecutorTest, ConstantBenchmarkEndToEnd) {
  AssessResult r = Run(
      "with SALES for year = '1997', product = 'milk' by year, product "
      "assess sales against 100 using ratio(sales, 100) "
      "labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}",
      PlanKind::kNP);
  ASSERT_EQ(r.cube.NumRows(), 1);
  auto sales = CellMap(r.cube, "sales");
  // Total milk sales: SmartMart 145 + PetitPrix 68 = 213.
  EXPECT_EQ(sales[K("1997", "milk")], 213);
  auto benchmark = CellMap(r.cube, r.benchmark_measure);
  EXPECT_EQ(benchmark[K("1997", "milk")], 100);
  auto comparison = CellMap(r.cube, r.comparison_measure);
  EXPECT_DOUBLE_EQ(comparison[K("1997", "milk")], 2.13);
  EXPECT_EQ(LabelMap(r.cube)[K("1997", "milk")], "good");
  EXPECT_EQ(r.plan, PlanKind::kNP);
  EXPECT_EQ(r.sql.size(), 1u);
  EXPECT_GT(r.timings.get_c, 0.0);
  EXPECT_EQ(r.timings.get_b, 0.0);
  EXPECT_EQ(r.timings.join, 0.0);
}

TEST_F(ExecutorTest, ConstantOnlySupportsNP) {
  auto analyzed = session_.Prepare(
      "with SALES by month assess sales against 10 labels quartiles");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(FeasiblePlans(*analyzed),
            (std::vector<PlanKind>{PlanKind::kNP}));
  auto jop = session_.Query(
      "with SALES by month assess sales against 10 labels quartiles",
      PlanKind::kJOP);
  EXPECT_EQ(jop.status().code(), StatusCode::kNotSupported);
}

TEST_F(ExecutorTest, QuartilesOverMonths) {
  AssessResult r = Run(
      "with SALES for store = 'SmartMart' by month assess sales "
      "labels quartiles",
      PlanKind::kNP);
  // Months 03..07 with sales 10,20,30,40,45: five cells into 4 groups.
  auto labels = LabelMap(r.cube);
  EXPECT_EQ(labels[K("1997-03")], "top-4");
  EXPECT_EQ(labels[K("1997-07")], "top-1");
}

// --- Sibling (the paper's worked example, Figure 1 end-to-end) --------------

TEST_F(ExecutorTest, SiblingNpReproducesExample45) {
  AssessResult r = Run(kSiblingStatement, PlanKind::kNP);
  ASSERT_EQ(r.cube.NumRows(), 3);
  auto diff = CellMap(r.cube, "difference");
  EXPECT_EQ(diff[K("Apple", "Italy")], -50);
  EXPECT_EQ(diff[K("Pear", "Italy")], -20);
  EXPECT_EQ(diff[K("Lemon", "Italy")], 10);
  auto pot = CellMap(r.cube, r.comparison_measure);
  EXPECT_NEAR(pot[K("Apple", "Italy")], -50.0 / 220.0, 1e-12);  // -0.227
  EXPECT_NEAR(pot[K("Pear", "Italy")], -20.0 / 220.0, 1e-12);   // -0.091
  EXPECT_NEAR(pot[K("Lemon", "Italy")], 10.0 / 220.0, 1e-12);   // 0.045
  auto labels = LabelMap(r.cube);
  EXPECT_EQ(labels[K("Apple", "Italy")], "bad");
  EXPECT_EQ(labels[K("Pear", "Italy")], "ok");
  EXPECT_EQ(labels[K("Lemon", "Italy")], "ok");
  EXPECT_EQ(r.sql.size(), 2u);  // two gets
  EXPECT_GT(r.timings.get_b, 0.0);
}

TEST_F(ExecutorTest, SiblingAllPlansAgree) {
  AssessResult np = Run(kSiblingStatement, PlanKind::kNP);
  AssessResult jop = Run(kSiblingStatement, PlanKind::kJOP);
  AssessResult pop = Run(kSiblingStatement, PlanKind::kPOP);
  for (const std::string& m :
       {std::string("quantity"), np.benchmark_measure,
        np.comparison_measure}) {
    EXPECT_EQ(CellMap(np.cube, m), CellMap(jop.cube, m)) << m;
    EXPECT_EQ(CellMap(np.cube, m), CellMap(pop.cube, m)) << m;
  }
  EXPECT_EQ(LabelMap(np.cube), LabelMap(jop.cube));
  EXPECT_EQ(LabelMap(np.cube), LabelMap(pop.cube));
  // Plan-specific shapes: fused plans issue a single SQL statement.
  EXPECT_EQ(jop.sql.size(), 1u);
  EXPECT_EQ(pop.sql.size(), 1u);
  EXPECT_GT(jop.timings.get_cb, 0.0);
  EXPECT_EQ(jop.timings.join, 0.0);
  EXPECT_GT(pop.timings.get_cb, 0.0);
}

TEST_F(ExecutorTest, SiblingStarKeepsUnmatchedCells) {
  // Slice France against Italy on the sales measure: milk sells in both, so
  // widen with a product sold in one country only... Apple sells in both
  // too; instead assess Dairy products against a country without dairy
  // facts is not available here, so check the star variant keeps the same
  // cells when everything matches and nulls appear for missing benchmarks.
  std::string star =
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess* quantity against country = 'France' "
      "using difference(quantity, benchmark.quantity) "
      "labels {[-inf, inf]: any}";
  AssessResult r = Run(star, PlanKind::kNP);
  EXPECT_EQ(r.cube.NumRows(), 3);
}

// --- Past --------------------------------------------------------------------

TEST_F(ExecutorTest, PastNpForecastsExactly) {
  AssessResult r = Run(kPastStatement, PlanKind::kNP);
  ASSERT_EQ(r.cube.NumRows(), 2);
  auto benchmark = CellMap(r.cube, "benchmark.sales");
  // SmartMart: OLS over 10,20,30,40 -> 50; PetitPrix: 5,10,15,20 -> 25.
  EXPECT_NEAR(benchmark[K("1997-07", "SmartMart")], 50.0, 1e-9);
  EXPECT_NEAR(benchmark[K("1997-07", "PetitPrix")], 25.0, 1e-9);
  auto ratio = CellMap(r.cube, r.comparison_measure);
  EXPECT_NEAR(ratio[K("1997-07", "SmartMart")], 45.0 / 50.0, 1e-9);
  EXPECT_NEAR(ratio[K("1997-07", "PetitPrix")], 18.0 / 25.0, 1e-9);
  auto labels = LabelMap(r.cube);
  // 0.9 falls in [0.9, 1.1] -> fine; 0.72 -> worse.
  EXPECT_EQ(labels[K("1997-07", "SmartMart")], "fine");
  EXPECT_EQ(labels[K("1997-07", "PetitPrix")], "worse");
  EXPECT_GT(r.timings.transform, 0.0);
  EXPECT_GT(r.timings.join, 0.0);
}

TEST_F(ExecutorTest, PastAllPlansAgree) {
  AssessResult np = Run(kPastStatement, PlanKind::kNP);
  AssessResult jop = Run(kPastStatement, PlanKind::kJOP);
  AssessResult pop = Run(kPastStatement, PlanKind::kPOP);
  for (const std::string& m :
       {std::string("sales"), np.benchmark_measure, np.comparison_measure}) {
    auto expected = CellMap(np.cube, m);
    auto jop_cells = CellMap(jop.cube, m);
    auto pop_cells = CellMap(pop.cube, m);
    ASSERT_EQ(expected.size(), jop_cells.size()) << m;
    ASSERT_EQ(expected.size(), pop_cells.size()) << m;
    for (const auto& [coord, value] : expected) {
      EXPECT_NEAR(value, jop_cells[coord], 1e-9);
      EXPECT_NEAR(value, pop_cells[coord], 1e-9);
    }
  }
  EXPECT_EQ(LabelMap(np.cube), LabelMap(jop.cube));
  EXPECT_EQ(LabelMap(np.cube), LabelMap(pop.cube));
  // JOP pushes the concatenating join; POP pushes the pivot.
  EXPECT_GT(jop.timings.get_cb, 0.0);
  EXPECT_GT(pop.timings.get_cb, 0.0);
  EXPECT_GT(jop.timings.transform, 0.0);
  EXPECT_GT(pop.timings.transform, 0.0);
}

TEST_F(ExecutorTest, PastWithMovingAverage) {
  session_.options()->forecast = ForecastMethod::kMovingAverage;
  AssessResult r = Run(kPastStatement, PlanKind::kPOP);
  auto benchmark = CellMap(r.cube, "benchmark.sales");
  EXPECT_NEAR(benchmark[K("1997-07", "SmartMart")], 25.0, 1e-9);
}

TEST_F(ExecutorTest, PastWindowOfOne) {
  AssessResult r = Run(
      "with SALES for month = '1997-07' by month, store "
      "assess sales against past 1 using ratio(sales, benchmark.sales) "
      "labels {[0, inf): any}",
      PlanKind::kNP);
  auto benchmark = CellMap(r.cube, "benchmark.sales");
  // A single past point forecasts itself (June: 40 and 20).
  EXPECT_NEAR(benchmark[K("1997-07", "SmartMart")], 40.0, 1e-9);
  EXPECT_NEAR(benchmark[K("1997-07", "PetitPrix")], 20.0, 1e-9);
}

// --- External ------------------------------------------------------------

TEST_F(ExecutorTest, ExternalBenchmarkNpAndJopAgree) {
  // Register a plan cube sharing the hierarchies, with one store missing.
  auto plan_schema = std::make_shared<CubeSchema>("PLAN");
  for (int h = 0; h < mini_.schema->hierarchy_count(); ++h) {
    plan_schema->AddHierarchy(mini_.schema->hierarchy_ptr(h));
  }
  plan_schema->AddMeasure({"planned", AggOp::kSum});
  const BoundCube* sales = *mini_.db->Find("SALES");
  std::vector<DimensionTable> dims;
  for (int h = 0; h < mini_.schema->hierarchy_count(); ++h) {
    dims.push_back(sales->dimension(h));
  }
  FactTable facts("PLAN", 3, 1);
  // Planned sales for SmartMart only (store row 0), July 1997.
  int32_t july15 = 6;  // date row of 1997-07-15 in kDates order
  facts.AddRow({july15, 3, 0}, {50.0});
  ASSERT_TRUE(mini_.db
                  ->Register("PLAN", std::make_unique<BoundCube>(
                                         plan_schema, std::move(dims),
                                         std::move(facts)))
                  .ok());

  std::string text =
      "with SALES for month = '1997-07' by month, store assess sales "
      "against PLAN.planned using ratio(sales, benchmark.planned) "
      "labels {[0, inf): any}";
  AssessResult np = Run(text, PlanKind::kNP);
  AssessResult jop = Run(text, PlanKind::kJOP);
  // Only SmartMart has a plan; the inner join drops PetitPrix.
  EXPECT_EQ(np.cube.NumRows(), 1);
  EXPECT_EQ(CellMap(np.cube, "benchmark.planned"),
            CellMap(jop.cube, "benchmark.planned"));
  EXPECT_EQ(np.benchmark_measure, "benchmark.planned");
  auto ratio = CellMap(np.cube, np.comparison_measure);
  EXPECT_NEAR(ratio[K("1997-07", "SmartMart")], 45.0 / 50.0, 1e-9);

  // assess* keeps PetitrPrix with null benchmark and label.
  std::string star =
      "with SALES for month = '1997-07' by month, store assess* sales "
      "against PLAN.planned using ratio(sales, benchmark.planned) "
      "labels {[0, inf): any}";
  AssessResult outer = Run(star, PlanKind::kNP);
  EXPECT_EQ(outer.cube.NumRows(), 2);
  auto labels = LabelMap(outer.cube);
  EXPECT_EQ(labels[K("1997-07", "PetitPrix")], "");
  EXPECT_EQ(labels[K("1997-07", "SmartMart")], "any");
  AssessResult outer_jop = Run(star, PlanKind::kJOP);
  EXPECT_EQ(LabelMap(outer_jop.cube), labels);
}

// --- Error handling ----------------------------------------------------------

TEST_F(ExecutorTest, PopInfeasibleForExternal) {
  auto r = session_.Query(
      "with SALES by month assess sales against 10 labels quartiles",
      PlanKind::kPOP);
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(ExecutorTest, UncoveredComparisonValueSurfacesAsError) {
  auto r = session_.Query(
      "with SALES by month assess sales against 10 "
      "using difference(sales, 10) labels {[0, 1]: tiny}",
      PlanKind::kNP);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExecutorTest, ResultToStringShowsContractColumns) {
  AssessResult r = Run(kSiblingStatement, PlanKind::kPOP);
  std::string s = r.ToString();
  EXPECT_NE(s.find("quantity"), std::string::npos);
  EXPECT_NE(s.find("benchmark.quantity"), std::string::npos);
  EXPECT_NE(s.find("label"), std::string::npos);
  EXPECT_NE(s.find("bad"), std::string::npos);
}

}  // namespace
}  // namespace assess
