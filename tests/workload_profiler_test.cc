// The workload profiler: candidate-node derivation, the sharded store under
// concurrency, the lattice roll-up against a brute-force oracle, the greedy
// advisor on a hand-computed shape, and the LRU eviction counter.

#include "obs/workload_profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/query_fingerprint.h"
#include "common/failpoint.h"
#include "olap/cube_query.h"
#include "test_util.h"

namespace assess {
namespace {

// MiniDb hierarchies: 0 = Date (date >= month >= year), 1 = Product
// (product >= type), 2 = Store (store >= country). Level 0 is finest.

class WorkloadProfilerTest : public ::testing::Test {
 protected:
  WorkloadProfilerTest() : mini_(testutil::BuildMiniSales()) {}

  CubeQuery Query(const std::vector<std::string>& by,
                  std::vector<Predicate> preds,
                  const std::vector<std::string>& measures) {
    auto q = CubeQuery::Make(*mini_.schema, "SALES", by, std::move(preds),
                             measures);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  WorkloadProfiler::Seen Record(WorkloadProfiler& profiler,
                                const CubeQuery& query,
                                WorkloadOutcome outcome = WorkloadOutcome::kMiss,
                                double latency_ms = 1.0,
                                uint64_t rows_scanned = 1000,
                                uint64_t morsels_skipped = 0) {
    return profiler.RecordQuery(*mini_.schema, CanonicalizeQuery(query),
                                outcome, latency_ms, rows_scanned,
                                morsels_skipped, /*fact_rows=*/1000);
  }

  testutil::MiniDb mini_;
};

// --- Candidate node -------------------------------------------------------

TEST_F(WorkloadProfilerTest, CandidateNodeIsFinestTouchedLevelPerHierarchy) {
  // Group by month (Date level 1) and country (Store level 1); Product
  // untouched.
  CubeQuery q = Query({"month", "country"}, {}, {"quantity"});
  EXPECT_EQ(CandidateNode(*mini_.schema, CanonicalizeQuery(q)),
            (std::vector<int>{1, -1, 1}));

  // A predicate finer than the group-by drags the node down to it: group by
  // month but filter a specific date.
  CubeQuery pred = Query({"month"}, {{0, 0, PredicateOp::kEquals, {"1997-03-15"}}},
                         {"quantity"});
  EXPECT_EQ(CandidateNode(*mini_.schema, CanonicalizeQuery(pred)),
            (std::vector<int>{0, -1, -1}));

  // A predicate coarser than the group-by changes nothing: group by product,
  // filter its type.
  CubeQuery coarse = Query({"product"},
                           {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}},
                           {"quantity"});
  EXPECT_EQ(CandidateNode(*mini_.schema, CanonicalizeQuery(coarse)),
            (std::vector<int>{-1, 0, -1}));
}

// --- The store ------------------------------------------------------------

TEST_F(WorkloadProfilerTest, AggregatesAcrossEpochsUnderOneFingerprint) {
  WorkloadProfiler profiler;
  CubeQuery q = Query({"product"}, {}, {"quantity"});
  CanonicalQuery canon = CanonicalizeQuery(q);
  canon.epoch = 3;
  profiler.RecordQuery(*mini_.schema, canon, WorkloadOutcome::kMiss, 1.0, 10,
                       0, 1000);
  canon.epoch = 7;  // same logical query after an ingest epoch bump
  WorkloadProfiler::Seen seen = profiler.RecordQuery(
      *mini_.schema, canon, WorkloadOutcome::kExactHit, 0.1, 0, 0, 1000);
  EXPECT_EQ(seen.count, 2u);
  EXPECT_EQ(profiler.fingerprints(), 1u);
  EXPECT_EQ(seen.lattice, "<product>");
}

TEST_F(WorkloadProfilerTest, DisabledProfilerRecordsNothing) {
  WorkloadProfiler profiler;
  profiler.set_enabled(false);
  CubeQuery q = Query({"product"}, {}, {"quantity"});
  WorkloadProfiler::Seen seen = Record(profiler, q);
  EXPECT_EQ(seen.count, 0u);
  EXPECT_EQ(profiler.fingerprints(), 0u);
  EXPECT_EQ(profiler.total_queries(), 0u);

  profiler.set_enabled(true);
  EXPECT_EQ(Record(profiler, q).count, 1u);
}

TEST_F(WorkloadProfilerTest, LruCapEvictsColdestAndCountsEvictions) {
  WorkloadProfilerOptions options;
  options.shards = 1;
  options.max_fingerprints = 4;
  WorkloadProfiler profiler(options);

  const std::vector<std::string> levels = {"date", "month",  "year",
                                           "product", "type", "store"};
  for (const std::string& level : levels) {
    Record(profiler, Query({level}, {}, {"quantity"}));
  }
  EXPECT_EQ(profiler.fingerprints(), 4u);
  EXPECT_EQ(profiler.evicted_fingerprints(), 2u);
  // Every record still counted, evicted or not.
  EXPECT_EQ(profiler.total_queries(), levels.size());
  EXPECT_EQ(profiler.BuildReport().evicted_fingerprints, 2u);

  // Touching a survivor protects it from the next eviction (LRU, not FIFO):
  // "year" (third-oldest) gets bumped, then a new query evicts "product".
  Record(profiler, Query({"year"}, {}, {"quantity"}));
  Record(profiler, Query({"country"}, {}, {"quantity"}));
  WorkloadReport report = profiler.BuildReport();
  bool saw_year = false;
  bool saw_product = false;
  for (const WorkloadEntrySnapshot& e : report.top) {
    if (e.display.find("<year>") != std::string::npos) saw_year = true;
    if (e.display.find("<product>") != std::string::npos) saw_product = true;
  }
  EXPECT_TRUE(saw_year);
  EXPECT_FALSE(saw_product);
}

TEST_F(WorkloadProfilerTest, ShardedStoreIsCoherentUnderConcurrentRecording) {
  WorkloadProfiler profiler;
  const std::vector<std::string> levels = {"date",    "month", "year",
                                           "product", "type",  "store",
                                           "country", "day"};
  std::vector<CubeQuery> queries;
  for (const std::string& level : levels) {
    if (level == "day") {
      queries.push_back(Query({"date", "product"}, {}, {"quantity"}));
    } else {
      queries.push_back(Query({level}, {}, {"quantity"}));
    }
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<bool> stop{false};
  // A reader thread hammers BuildReport()/fingerprints() while writers
  // record: under TSan this proves snapshotting never races the hot path.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      WorkloadReport report = profiler.BuildReport();
      ASSERT_LE(report.fingerprints, queries.size());
      (void)profiler.fingerprints();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const CubeQuery& q = queries[(t + i) % queries.size()];
        profiler.RecordQuery(*mini_.schema, CanonicalizeQuery(q),
                             i % 2 == 0 ? WorkloadOutcome::kMiss
                                        : WorkloadOutcome::kExactHit,
                             0.5, 100, 1, 1000);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(profiler.total_queries(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(profiler.fingerprints(), queries.size());
  WorkloadReport report = profiler.BuildReport();
  uint64_t executions = 0;
  for (const WorkloadEntrySnapshot& e : report.top) {
    executions += e.executions;
    EXPECT_EQ(e.exact_hits + e.misses, e.executions);
  }
  EXPECT_EQ(executions, static_cast<uint64_t>(kThreads) * kIters);
}

TEST_F(WorkloadProfilerTest, ObsProfileFailpointOnlyMovesDroppedCounter) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  WorkloadProfiler profiler;
  CubeQuery q = Query({"product"}, {}, {"quantity"});
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmFromString("obs.profile=error:budget=2")
                  .ok());
  EXPECT_EQ(Record(profiler, q).count, 0u);
  EXPECT_EQ(Record(profiler, q).count, 0u);
  // Budget exhausted: the third record lands normally.
  EXPECT_EQ(Record(profiler, q).count, 1u);
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(profiler.dropped_samples(), 2u);
  EXPECT_EQ(profiler.total_queries(), 1u);
}

// --- Lattice roll-up vs brute-force oracle --------------------------------

LatticeHeat::CubeShape TwoHierarchyShape() {
  LatticeHeat::CubeShape shape;
  shape.cube = "SALES";
  shape.fact_rows = 1'000'000;
  shape.level_names = {{"day", "month", "year"}, {"store", "country"}};
  shape.level_cardinality = {{1000, 40, 4}, {100, 10}};
  return shape;
}

TEST(LatticeHeatTest, CoversMatchesRollupApplicability) {
  // view answers query iff every hierarchy the query touches is present in
  // the view at a finer-or-equal level.
  EXPECT_TRUE(LatticeHeat::Covers({0, 0}, {1, 1}));
  EXPECT_TRUE(LatticeHeat::Covers({1, 0}, {1, -1}));
  EXPECT_TRUE(LatticeHeat::Covers({0, 1}, {2, 1}));
  EXPECT_FALSE(LatticeHeat::Covers({1, 1}, {0, 1}));   // too coarse on h0
  EXPECT_FALSE(LatticeHeat::Covers({-1, 0}, {1, 0}));  // h0 absent
  EXPECT_TRUE(LatticeHeat::Covers({0, -1}, {2, -1}));
  EXPECT_FALSE(LatticeHeat::Covers({0, 0}, {0, 0, -1}));  // shape mismatch
}

TEST(LatticeHeatTest, RollupMatchesBruteForceOracle) {
  LatticeHeat heat(TwoHierarchyShape());
  // A deliberately overlapping set of candidate nodes.
  const std::vector<std::pair<std::vector<int>, uint64_t>> observed = {
      {{0, 0}, 3},  {{0, 1}, 5},   {{1, 0}, 7},  {{1, 1}, 11},
      {{2, 1}, 13}, {{0, -1}, 17}, {{-1, 0}, 19}, {{-1, 1}, 23},
      {{2, -1}, 29}, {{1, -1}, 31},
  };
  for (const auto& [node, executions] : observed) {
    heat.Add(node, executions);
  }

  std::vector<LatticeHeatNode> nodes = heat.Nodes();
  ASSERT_EQ(nodes.size(), observed.size());
  for (const LatticeHeatNode& node : nodes) {
    // Oracle: recompute the roll-up for this node the slow, obvious way.
    uint64_t fingerprints = 0;
    uint64_t executions = 0;
    for (const auto& [other, count] : observed) {
      if (LatticeHeat::Covers(node.levels, other)) {
        fingerprints += 1;
        executions += count;
      }
    }
    EXPECT_EQ(node.fingerprints, fingerprints) << node.node;
    EXPECT_EQ(node.executions, executions) << node.node;
  }
  // Sorted hottest-first.
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GE(nodes[i - 1].executions, nodes[i].executions);
  }
}

TEST(LatticeHeatTest, EstimatedRowsIsCardinalityProductCappedAtFactRows) {
  LatticeHeat heat(TwoHierarchyShape());
  EXPECT_EQ(heat.EstimatedRows({1, 1}), 40 * 10);
  EXPECT_EQ(heat.EstimatedRows({2, -1}), 4);
  EXPECT_EQ(heat.EstimatedRows({0, 0}), 1000 * 100);
  // An over-wide node caps at the fact rows instead of overflowing.
  LatticeHeat::CubeShape wide = TwoHierarchyShape();
  wide.level_cardinality = {{2'000'000, 40, 4}, {100, 10}};
  LatticeHeat capped(wide);
  EXPECT_EQ(capped.EstimatedRows({0, 0}), wide.fact_rows);
}

// --- Greedy advisor golden -----------------------------------------------

TEST(LatticeHeatTest, GreedyAdvisorGolden) {
  // Hand-computed workload: the hot <month, country> shape, a coarse
  // <year> rollup, and one fine <day, store> drill-down.
  LatticeHeat heat(TwoHierarchyShape());
  heat.Add({1, 1}, 100);  // month x country: 400-row view
  heat.Add({2, -1}, 50);  // year: 4-row view
  heat.Add({0, 0}, 1);    // day x store: 100000-row view

  std::vector<MvRecommendation> recs = heat.Greedy(3);
  ASSERT_EQ(recs.size(), 3u);

  // Round 1: <month, country> covers itself (100x) and <year> (50x), both
  // currently answered by the 1M-row fact table:
  //   150 * (1,000,000 - 400) = 149,940,000.
  EXPECT_EQ(recs[0].node, "<month, country>");
  EXPECT_EQ(recs[0].level_names, (std::vector<std::string>{"month", "country"}));
  EXPECT_EQ(recs[0].estimated_rows, 400);
  EXPECT_EQ(recs[0].queries_covered, 2u);
  EXPECT_EQ(recs[0].executions_covered, 150u);
  EXPECT_DOUBLE_EQ(recs[0].expected_scan_savings, 150.0 * (1'000'000 - 400));

  // Round 2: <day, store> covers everything, but the hot shapes now cost
  // 400 — only the drill-down still benefits: 1 * (1M - 100,000) = 900,000.
  EXPECT_EQ(recs[1].node, "<day, store>");
  EXPECT_DOUBLE_EQ(recs[1].expected_scan_savings, 1.0 * (1'000'000 - 100'000));

  // Round 3: <year> refines its own 400-row answer: 50 * (400 - 4) = 19,800.
  EXPECT_EQ(recs[2].node, "<year>");
  EXPECT_DOUBLE_EQ(recs[2].expected_scan_savings, 50.0 * (400 - 4));
}

TEST(LatticeHeatTest, GreedyStopsWhenNothingSaves) {
  // One observed node as big as the fact table: materializing it saves
  // nothing, so the advisor recommends nothing rather than something.
  LatticeHeat::CubeShape shape = TwoHierarchyShape();
  shape.fact_rows = 1000;  // day x store (100,000) caps to 1000 = fact rows
  LatticeHeat heat(shape);
  heat.Add({0, 0}, 100);
  EXPECT_TRUE(heat.Greedy(3).empty());
}

// --- Report ---------------------------------------------------------------

TEST_F(WorkloadProfilerTest, ReportRanksAndRecommends) {
  WorkloadProfiler profiler;
  CubeQuery hot = Query({"month", "country"}, {}, {"quantity"});
  CubeQuery cold = Query({"year"}, {}, {"quantity"});
  for (int i = 0; i < 9; ++i) {
    Record(profiler, hot, WorkloadOutcome::kMiss, 2.0, 1000, 0);
  }
  Record(profiler, cold, WorkloadOutcome::kMiss, 8.0, 1000, 0);
  profiler.RecordPiggyback(*mini_.schema,
                           CanonicalizeQuery(hot));  // MQO rider

  WorkloadReport report = profiler.BuildReport();
  EXPECT_EQ(report.fingerprints, 2u);
  EXPECT_EQ(report.total_queries, 10u);
  EXPECT_EQ(report.piggybacked, 1u);
  ASSERT_EQ(report.top.size(), 2u);
  EXPECT_EQ(report.top[0].lattice, "<month, country>");
  EXPECT_EQ(report.top[0].executions, 9u);
  EXPECT_EQ(report.top[0].piggybacked, 1u);
  EXPECT_NEAR(report.top[0].p50_ms, 2.0, 2.0);

  // The hot node leads the heat section and the advisor's first pick
  // answers it.
  ASSERT_FALSE(report.heat.empty());
  EXPECT_EQ(report.heat[0].node, "<month, country>");
  ASSERT_FALSE(report.recommendations.empty());
  EXPECT_EQ(report.recommendations[0].node, "<month, country>");

  // Renderings carry the load-bearing identifiers.
  std::string text = report.ToText();
  EXPECT_NE(text.find("workload profile: 2 fingerprints"), std::string::npos);
  EXPECT_NE(text.find("<month, country>"), std::string::npos);
  EXPECT_NE(text.find("recommended views"), std::string::npos);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"fingerprints\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"recommendations\": ["), std::string::npos);
  EXPECT_NE(json.find("\"levels\": [\"month\", \"country\"]"),
            std::string::npos);
}

}  // namespace
}  // namespace assess
