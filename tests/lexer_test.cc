#include "assess/lexer.h"

#include <gtest/gtest.h>

namespace assess {
namespace {

std::vector<TokenType> Types(const std::vector<Token>& tokens) {
  std::vector<TokenType> out;
  for (const Token& t : tokens) out.push_back(t.type);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = *Tokenize("   \n\t ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = *Tokenize("with SALES assess storeSales");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "with");
  EXPECT_EQ(tokens[1].text, "SALES");
  EXPECT_EQ(tokens[3].text, "storeSales");
}

TEST(LexerTest, KeywordMatchingIsCaseInsensitive) {
  auto tokens = *Tokenize("WITH With with");
  EXPECT_TRUE(tokens[0].IsKeyword("with"));
  EXPECT_TRUE(tokens[1].IsKeyword("with"));
  EXPECT_TRUE(tokens[2].IsKeyword("WITH"));
  EXPECT_FALSE(tokens[2].IsKeyword("by"));
}

TEST(LexerTest, Numbers) {
  auto tokens = *Tokenize("1000 0.9 1e3 2.5E-2");
  EXPECT_EQ(tokens[0].number, 1000);
  EXPECT_EQ(tokens[1].number, 0.9);
  EXPECT_EQ(tokens[2].number, 1000);
  EXPECT_EQ(tokens[3].number, 0.025);
}

TEST(LexerTest, Strings) {
  auto tokens = *Tokenize("'Fresh Fruit' 'Italy'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "Fresh Fruit");
  EXPECT_EQ(tokens[1].text, "Italy");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'Italy").ok());
}

TEST(LexerTest, Punctuation) {
  auto tokens = *Tokenize("( ) { } [ ] , : = * . -");
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{
                TokenType::kLParen, TokenType::kRParen, TokenType::kLBrace,
                TokenType::kRBrace, TokenType::kLBracket,
                TokenType::kRBracket, TokenType::kComma, TokenType::kColon,
                TokenType::kEquals, TokenType::kStar, TokenType::kDot,
                TokenType::kMinus, TokenType::kEnd}));
}

TEST(LexerTest, DottedMeasureLexesAsThreeTokens) {
  auto tokens = *Tokenize("benchmark.quantity");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "benchmark");
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].text, "quantity");
}

TEST(LexerTest, RangeSyntax) {
  auto tokens = *Tokenize("[0, 0.9): bad");
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{
                TokenType::kLBracket, TokenType::kNumber, TokenType::kComma,
                TokenType::kNumber, TokenType::kRParen, TokenType::kColon,
                TokenType::kIdent, TokenType::kEnd}));
}

TEST(LexerTest, NegativeBoundsLexAsMinusThenNumber) {
  auto tokens = *Tokenize("-0.2 -inf");
  EXPECT_EQ(tokens[0].type, TokenType::kMinus);
  EXPECT_EQ(tokens[1].number, 0.2);
  EXPECT_EQ(tokens[2].type, TokenType::kMinus);
  EXPECT_TRUE(tokens[3].IsKeyword("inf"));
}

TEST(LexerTest, OffsetsPointIntoTheInput) {
  auto tokens = *Tokenize("with SALES");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 5u);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  Result<std::vector<Token>> r = Tokenize("with SALES; drop");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("';'"), std::string::npos);
}

TEST(LexerTest, NumberFollowedByIdent) {
  // "5stars" lexes as number 5 + identifier "stars" (refused elsewhere or
  // fused by the parser's labels rule).
  auto tokens = *Tokenize("5stars");
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[1].text, "stars");
}

TEST(LexerTest, TokenTypeNames) {
  EXPECT_EQ(TokenTypeToString(TokenType::kIdent), "identifier");
  EXPECT_EQ(TokenTypeToString(TokenType::kEnd), "end of statement");
}

}  // namespace
}  // namespace assess
