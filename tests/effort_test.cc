#include "assess/effort.h"

#include <gtest/gtest.h>

#include "assess/python_codegen.h"
#include "assess/session.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"

namespace assess {
namespace {

class EffortTest : public ::testing::Test {
 protected:
  EffortTest() {
    SsbConfig config;
    config.scale_factor = 0.002;
    db_ = std::move(BuildSsbDatabase(config)).value();
    session_ = std::make_unique<AssessSession>(db_.get());
  }

  AnalyzedStatement Must(const std::string& text) {
    auto analyzed = session_->Prepare(text);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  std::unique_ptr<StarDatabase> db_;
  std::unique_ptr<AssessSession> session_;
};

TEST_F(EffortTest, Table1OrderOfMagnitudeHolds) {
  // The paper's Table 1 finding: SQL+Python effort is more than an order of
  // magnitude larger than the assess statement, for every intention type.
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    AnalyzedStatement analyzed = Must(stmt.text);
    auto report = MeasureFormulationEffort(analyzed, *db_);
    ASSERT_TRUE(report.ok()) << stmt.name;
    EXPECT_GT(report->sql_chars, 0) << stmt.name;
    EXPECT_GT(report->python_chars, 1000) << stmt.name;
    EXPECT_GT(report->assess_chars, 0) << stmt.name;
    EXPECT_GT(report->total_chars(), 10 * report->assess_chars) << stmt.name;
  }
}

TEST_F(EffortTest, SqlSideCountsOneGetForConstantTwoOtherwise) {
  AnalyzedStatement constant = Must(SsbWorkload()[0].text);
  AnalyzedStatement sibling = Must(SsbWorkload()[2].text);
  auto constant_report = *MeasureFormulationEffort(constant, *db_);
  auto sibling_report = *MeasureFormulationEffort(sibling, *db_);
  // Two NP gets cost roughly twice one get.
  EXPECT_GT(sibling_report.sql_chars, constant_report.sql_chars * 3 / 2);
}

TEST_F(EffortTest, PastIsTheCostliestIntention) {
  // Matches the Table 1 ordering: Past has the largest total effort.
  std::vector<int64_t> totals;
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    totals.push_back(
        MeasureFormulationEffort(Must(stmt.text), *db_)->total_chars());
  }
  EXPECT_GT(totals[3], totals[0]);
  EXPECT_GT(totals[3], totals[1]);
  EXPECT_GT(totals[3], totals[2]);
}

TEST_F(EffortTest, PythonScriptIsPlausibleClientCode) {
  AnalyzedStatement past = Must(SsbWorkload()[3].text);
  std::string script = GeneratePythonScript(past);
  EXPECT_NE(script.find("import pandas as pd"), std::string::npos);
  EXPECT_NE(script.find("from sklearn.linear_model import LinearRegression"),
            std::string::npos);
  EXPECT_NE(script.find("def forecast_next"), std::string::npos);
  EXPECT_NE(script.find("pivot_table"), std::string::npos);
  EXPECT_NE(script.find("def ratio"), std::string::npos);
  EXPECT_NE(script.find("def main"), std::string::npos);

  AnalyzedStatement constant = Must(SsbWorkload()[0].text);
  std::string constant_script = GeneratePythonScript(constant);
  // No sklearn or pivoting needed without a forecast.
  EXPECT_EQ(constant_script.find("sklearn"), std::string::npos);
  EXPECT_NE(constant_script.find("def ratio"), std::string::npos);
  EXPECT_NE(constant_script.find("LABEL_RANGES"), std::string::npos);
}

TEST_F(EffortTest, InlineVsNamedLabelingChangesScript) {
  AnalyzedStatement named = Must(
      "with SSB by c_nation assess revenue labels quartiles");
  std::string script = GeneratePythonScript(named);
  EXPECT_NE(script.find("qcut"), std::string::npos);
  EXPECT_EQ(script.find("LABEL_RANGES"), std::string::npos);
}

TEST_F(EffortTest, AssessCharsMatchOriginalText) {
  const WorkloadStatement stmt = SsbWorkload()[0];
  AnalyzedStatement analyzed = Must(stmt.text);
  auto report = *MeasureFormulationEffort(analyzed, *db_);
  EXPECT_EQ(report.assess_chars,
            static_cast<int64_t>(stmt.text.size()));
}

}  // namespace
}  // namespace assess
