#include "assess/parser.h"

#include <gtest/gtest.h>

#include <cmath>

namespace assess {
namespace {

AssessStatement Parse(const std::string& input) {
  auto stmt = ParseAssessStatement(input);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return std::move(stmt).value();
}

// --- The four statements of Example 4.1 -------------------------------------

TEST(ParserTest, AbsoluteAssessmentStatement) {
  AssessStatement stmt =
      Parse("with SALES by month assess storeSales labels quartiles");
  EXPECT_EQ(stmt.cube, "SALES");
  EXPECT_TRUE(stmt.for_predicates.empty());
  EXPECT_EQ(stmt.by_levels, std::vector<std::string>{"month"});
  EXPECT_EQ(stmt.measure, "storeSales");
  EXPECT_EQ(stmt.against.type, BenchmarkType::kNone);
  EXPECT_FALSE(stmt.using_expr.has_value());
  EXPECT_EQ(stmt.labels.named, "quartiles");
  EXPECT_FALSE(stmt.star);
}

TEST(ParserTest, ConstantBenchmarkStatement) {
  AssessStatement stmt = Parse(
      "with SALES by month assess storeSales against 1000 "
      "using minMaxNorm(difference(storeSales, 1000)) labels 5star");
  EXPECT_EQ(stmt.against.type, BenchmarkType::kConstant);
  EXPECT_EQ(stmt.against.constant, 1000);
  ASSERT_TRUE(stmt.using_expr.has_value());
  EXPECT_EQ(stmt.using_expr->ToString(),
            "minMaxNorm(difference(storeSales, 1000))");
  EXPECT_EQ(stmt.labels.named, "5star");
}

TEST(ParserTest, SiblingStatementVerbatimFromThePaper) {
  AssessStatement stmt = Parse(
      "with SALES "
      "for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country "
      "assess quantity against country = 'France' "
      "using percOfTotal(difference(quantity, benchmark.quantity)) "
      "labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}");
  ASSERT_EQ(stmt.for_predicates.size(), 2u);
  EXPECT_EQ(stmt.for_predicates[0].level, "type");
  EXPECT_EQ(stmt.for_predicates[0].members[0], "Fresh Fruit");
  EXPECT_EQ(stmt.against.type, BenchmarkType::kSibling);
  EXPECT_EQ(stmt.against.sibling_level, "country");
  EXPECT_EQ(stmt.against.sibling_member, "France");
  ASSERT_TRUE(stmt.labels.is_inline);
  ASSERT_EQ(stmt.labels.ranges.size(), 3u);
  EXPECT_TRUE(std::isinf(stmt.labels.ranges[0].lo));
  EXPECT_LT(stmt.labels.ranges[0].lo, 0);
  EXPECT_EQ(stmt.labels.ranges[0].label, "bad");
  EXPECT_TRUE(stmt.labels.ranges[1].hi_closed);
  EXPECT_FALSE(stmt.labels.ranges[2].lo_closed);
}

TEST(ParserTest, PastStatementVerbatimFromThePaper) {
  AssessStatement stmt = Parse(
      "with SALES "
      "for month = '1997-07', store = 'SmartMart' "
      "by month, store "
      "assess storeSales against past 4 "
      "using ratio(storeSales, benchmark.storeSales) "
      "labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}");
  EXPECT_EQ(stmt.against.type, BenchmarkType::kPast);
  EXPECT_EQ(stmt.against.past_k, 4);
  EXPECT_EQ(stmt.using_expr->ToString(),
            "ratio(storeSales, benchmark.storeSales)");
}

// --- Clause variants ---------------------------------------------------------

TEST(ParserTest, AssessStarSetsFlag) {
  AssessStatement stmt =
      Parse("with SALES by month assess* storeSales labels quartiles");
  EXPECT_TRUE(stmt.star);
}

TEST(ParserTest, ExternalBenchmark) {
  AssessStatement stmt = Parse(
      "with SSB by customer assess revenue against BUDGET.plannedRevenue "
      "labels quartiles");
  EXPECT_EQ(stmt.against.type, BenchmarkType::kExternal);
  EXPECT_EQ(stmt.against.external_cube, "BUDGET");
  EXPECT_EQ(stmt.against.external_measure, "plannedRevenue");
}

TEST(ParserTest, NegativeConstantBenchmark) {
  AssessStatement stmt = Parse(
      "with SALES by month assess profit against -50 labels quartiles");
  EXPECT_EQ(stmt.against.type, BenchmarkType::kConstant);
  EXPECT_EQ(stmt.against.constant, -50);
}

TEST(ParserTest, InPredicate) {
  AssessStatement stmt = Parse(
      "with SALES for country in ('Italy', 'France') by product "
      "assess quantity labels quartiles");
  ASSERT_EQ(stmt.for_predicates.size(), 1u);
  EXPECT_EQ(stmt.for_predicates[0].op, PredicateOp::kIn);
  EXPECT_EQ(stmt.for_predicates[0].members,
            (std::vector<std::string>{"Italy", "France"}));
}

TEST(ParserTest, BetweenPredicate) {
  AssessStatement stmt = Parse(
      "with SALES for month between '1997-03' and '1997-06' by month "
      "assess quantity labels quartiles");
  EXPECT_EQ(stmt.for_predicates[0].op, PredicateOp::kBetween);
  EXPECT_EQ(stmt.for_predicates[0].members,
            (std::vector<std::string>{"1997-03", "1997-06"}));
}

TEST(ParserTest, QuotedStringLabels) {
  AssessStatement stmt = Parse(
      "with SALES by month assess storeSales "
      "labels {[-inf, 0): '*', [0, inf]: '*****'}");
  ASSERT_TRUE(stmt.labels.is_inline);
  EXPECT_EQ(stmt.labels.ranges[0].label, "*");
  EXPECT_EQ(stmt.labels.ranges[1].label, "*****");
}

TEST(ParserTest, NumberPrefixedLabelingName) {
  AssessStatement stmt =
      Parse("with SALES by month assess storeSales labels 5stars");
  EXPECT_EQ(stmt.labels.named, "5stars");
}

TEST(ParserTest, UsingWithNumericLeaf) {
  AssessStatement stmt = Parse(
      "with SALES by month assess storeSales using "
      "difference(storeSales, -3.5) labels quartiles");
  EXPECT_EQ(stmt.using_expr->ToString(), "difference(storeSales, -3.5)");
}

TEST(ParserTest, NullaryCallParses) {
  AssessStatement stmt = Parse(
      "with SALES by month assess storeSales using f() labels quartiles");
  EXPECT_EQ(stmt.using_expr->ToString(), "f()");
}

TEST(ParserTest, OriginalTextIsPreserved) {
  std::string text =
      "  with SALES by month assess storeSales labels quartiles ";
  AssessStatement stmt = Parse(text);
  EXPECT_EQ(stmt.original_text,
            "with SALES by month assess storeSales labels quartiles");
}

TEST(ParserTest, ToStringRoundTripsStructurally) {
  const char* statements[] = {
      "with SALES by month assess storeSales labels quartiles",
      "with SALES for type = 'Fresh Fruit', country = 'Italy' by product, "
      "country assess quantity against country = 'France' using "
      "percOfTotal(difference(quantity, benchmark.quantity), quantity) labels "
      "{[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}",
      "with SALES for month = '1997-07', store = 'SmartMart' by month, store "
      "assess* storeSales against past 4 using ratio(storeSales, "
      "benchmark.storeSales) labels {[0, 0.9): worse, [0.9, 1.1]: fine, "
      "(1.1, inf): better}",
      "with SSB by customer assess revenue against BUDGET.plannedRevenue "
      "labels quartiles",
  };
  for (const char* text : statements) {
    AssessStatement once = Parse(text);
    AssessStatement twice = Parse(once.ToString());
    EXPECT_EQ(once.ToString(), twice.ToString()) << text;
    EXPECT_EQ(once.cube, twice.cube);
    EXPECT_EQ(once.by_levels, twice.by_levels);
    EXPECT_EQ(once.star, twice.star);
    EXPECT_EQ(once.measure, twice.measure);
    EXPECT_EQ(once.against.type, twice.against.type);
  }
}

// --- Errors ------------------------------------------------------------------

struct BadStatement {
  const char* text;
  const char* reason;
};

class ParserErrorTest : public ::testing::TestWithParam<BadStatement> {};

TEST_P(ParserErrorTest, IsRejectedWithInvalidArgument) {
  auto result = ParseAssessStatement(GetParam().text);
  ASSERT_FALSE(result.ok()) << GetParam().reason;
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << GetParam().reason;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadStatement{"", "empty statement"},
        BadStatement{"by month assess x labels q", "missing with"},
        BadStatement{"with SALES assess x labels q", "missing by"},
        BadStatement{"with SALES by month labels q", "missing assess"},
        BadStatement{"with SALES by month assess x", "missing labels"},
        BadStatement{"with SALES by month assess x labels q extra",
                     "trailing tokens"},
        BadStatement{"with SALES by month assess x against past 0 labels q",
                     "past window must be positive"},
        BadStatement{"with SALES by month assess x against past 2.5 labels q",
                     "past window must be integral"},
        BadStatement{"with SALES by month assess x against labels q",
                     "malformed against"},
        BadStatement{"with SALES for country by month assess x labels q",
                     "predicate without operator"},
        BadStatement{"with SALES for country = Italy by month assess x "
                     "labels q",
                     "unquoted member"},
        BadStatement{"with SALES by month assess x labels {[0, 1: bad}",
                     "unclosed range"},
        BadStatement{"with SALES by month assess x labels {[0, 1) bad}",
                     "missing colon"},
        BadStatement{"with SALES by month assess x labels {[zero, 1): bad}",
                     "non-numeric bound"},
        BadStatement{"with SALES by month assess x using f( labels q",
                     "unclosed call"},
        BadStatement{"with SALES by month assess x against B. labels q",
                     "dangling dot"}));

}  // namespace
}  // namespace assess
