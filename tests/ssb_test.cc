#include "ssb/ssb_generator.h"

#include <gtest/gtest.h>

#include "assess/session.h"
#include "ssb/sales_generator.h"
#include "ssb/workload.h"
#include "storage/star_query_engine.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;
using ::assess::testutil::K;

class SsbGeneratorTest : public ::testing::Test {
 protected:
  SsbGeneratorTest() {
    SsbConfig config;
    config.scale_factor = 0.005;
    db_ = std::move(BuildSsbDatabase(config)).value();
    ssb_ = *db_->Find("SSB");
  }

  std::unique_ptr<StarDatabase> db_;
  const BoundCube* ssb_ = nullptr;
};

TEST_F(SsbGeneratorTest, FactCountMatchesScaleFactor) {
  EXPECT_EQ(SsbFactCount(1.0), 6000000);
  EXPECT_EQ(SsbFactCount(0.005), 30000);
  EXPECT_EQ(ssb_->facts().NumRows(), 30000);
}

TEST_F(SsbGeneratorTest, CubesValidate) {
  EXPECT_TRUE(ssb_->Validate().ok());
  EXPECT_TRUE((*db_->Find("BUDGET"))->Validate().ok());
}

TEST_F(SsbGeneratorTest, HierarchyShapes) {
  const CubeSchema& schema = ssb_->schema();
  ASSERT_EQ(schema.hierarchy_count(), 4);
  const Hierarchy& date = schema.hierarchy(0);
  EXPECT_TRUE(date.temporal());
  EXPECT_EQ(date.LevelCardinality(*date.LevelIndex("date")), 2557);  // 1992-98
  EXPECT_EQ(date.LevelCardinality(*date.LevelIndex("month")), 84);
  EXPECT_EQ(date.LevelCardinality(*date.LevelIndex("year")), 7);

  const Hierarchy& customer = schema.hierarchy(1);
  EXPECT_EQ(customer.LevelCardinality(*customer.LevelIndex("c_city")), 250);
  EXPECT_EQ(customer.LevelCardinality(*customer.LevelIndex("c_nation")), 25);
  EXPECT_EQ(customer.LevelCardinality(*customer.LevelIndex("c_region")), 5);

  const Hierarchy& part = schema.hierarchy(2);
  EXPECT_EQ(part.LevelCardinality(*part.LevelIndex("brand")), 1000);
  EXPECT_EQ(part.LevelCardinality(*part.LevelIndex("category")), 25);
  EXPECT_EQ(part.LevelCardinality(*part.LevelIndex("mfgr")), 5);

  const Hierarchy& supplier = schema.hierarchy(3);
  EXPECT_EQ(supplier.LevelCardinality(*supplier.LevelIndex("s_region")), 5);
}

TEST_F(SsbGeneratorTest, CalendarIsReal) {
  const Hierarchy& date = ssb_->schema().hierarchy(0);
  // 1992 and 1996 are leap years within the SSB range.
  EXPECT_TRUE(date.MemberIdOf(0, "1996-02-29").ok());
  EXPECT_FALSE(date.MemberIdOf(0, "1997-02-29").ok());
  EXPECT_TRUE(date.MemberIdOf(0, "1998-12-31").ok());
  EXPECT_FALSE(date.MemberIdOf(0, "1999-01-01").ok());
  // Date members roll up to their month and year.
  MemberId d = *date.MemberIdOf(0, "1996-02-29");
  EXPECT_EQ(date.MemberName(1, date.RollUpMember(0, d, 1)), "1996-02");
  EXPECT_EQ(date.MemberName(2, date.RollUpMember(0, d, 2)), "1996");
}

TEST_F(SsbGeneratorTest, NationsFollowSsbVocabulary) {
  const Hierarchy& customer = ssb_->schema().hierarchy(1);
  int nation_level = *customer.LevelIndex("c_nation");
  int region_level = *customer.LevelIndex("c_region");
  MemberId france = *customer.MemberIdOf(nation_level, "FRANCE");
  EXPECT_EQ(customer.MemberName(
                region_level,
                customer.RollUpMember(nation_level, france, region_level)),
            "EUROPE");
  MemberId china = *customer.MemberIdOf(nation_level, "CHINA");
  EXPECT_EQ(customer.MemberName(
                region_level,
                customer.RollUpMember(nation_level, china, region_level)),
            "ASIA");
}

TEST_F(SsbGeneratorTest, DeterministicForSeed) {
  SsbConfig config;
  config.scale_factor = 0.002;
  auto a = BuildSsbDatabase(config);
  auto b = BuildSsbDatabase(config);
  ASSERT_TRUE(a.ok() && b.ok());
  const FactTable& fa = (*(*a)->Find("SSB"))->facts();
  const FactTable& fb = (*(*b)->Find("SSB"))->facts();
  ASSERT_EQ(fa.NumRows(), fb.NumRows());
  EXPECT_EQ(fa.fk_column(2), fb.fk_column(2));
  EXPECT_EQ(fa.measure_column(1), fb.measure_column(1));
}

TEST_F(SsbGeneratorTest, BudgetSkipsEveryFifthCustomer) {
  const BoundCube* budget = *db_->Find("BUDGET");
  for (int32_t fk : budget->facts().fk_column(1)) {
    EXPECT_NE(fk % 5, 0);
  }
  EXPECT_EQ(budget->facts().measure_count(), 1);
  EXPECT_EQ(budget->schema().measure(0).name, "plannedRevenue");
}

TEST_F(SsbGeneratorTest, RejectsNonPositiveScale) {
  SsbConfig config;
  config.scale_factor = 0.0;
  EXPECT_FALSE(BuildSsbDatabase(config).ok());
}

TEST_F(SsbGeneratorTest, WorkloadStatementsAnalyzeAndCoverAllTypes) {
  AssessSession session(db_.get());
  std::vector<BenchmarkType> types;
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto analyzed = session.Prepare(stmt.text);
    ASSERT_TRUE(analyzed.ok())
        << stmt.name << ": " << analyzed.status().ToString();
    types.push_back(analyzed->type);
  }
  EXPECT_EQ(types,
            (std::vector<BenchmarkType>{
                BenchmarkType::kConstant, BenchmarkType::kExternal,
                BenchmarkType::kSibling, BenchmarkType::kPast}));
}

TEST_F(SsbGeneratorTest, ScaleSeriesKeepsPaperRatios) {
  auto series = SsbScaleSeries(0.02);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].name, "SSB1");
  EXPECT_DOUBLE_EQ(series[1].scale_factor / series[0].scale_factor, 10.0);
  EXPECT_DOUBLE_EQ(series[2].scale_factor / series[0].scale_factor, 100.0);
}

TEST(BaseScaleFactorTest, EnvOverride) {
  unsetenv("ASSESS_SSB_BASE_SF");
  EXPECT_DOUBLE_EQ(BaseScaleFactorFromEnv(0.02), 0.02);
  setenv("ASSESS_SSB_BASE_SF", "0.5", 1);
  EXPECT_DOUBLE_EQ(BaseScaleFactorFromEnv(0.02), 0.5);
  setenv("ASSESS_SSB_BASE_SF", "bogus", 1);
  EXPECT_DOUBLE_EQ(BaseScaleFactorFromEnv(0.02), 0.02);
  setenv("ASSESS_SSB_BASE_SF", "-1", 1);
  EXPECT_DOUBLE_EQ(BaseScaleFactorFromEnv(0.02), 0.02);
  unsetenv("ASSESS_SSB_BASE_SF");
}

// --- SALES generator ----------------------------------------------------

TEST(SalesGeneratorTest, PaperVocabularyIsPresent) {
  SalesConfig config;
  config.facts = 5000;
  auto db = BuildSalesDatabase(config);
  ASSERT_TRUE(db.ok());
  const BoundCube* sales = *(*db)->Find("SALES");
  const CubeSchema& schema = sales->schema();
  const Hierarchy& product = schema.hierarchy(2);
  EXPECT_TRUE(product.MemberIdOf(0, "milk").ok());
  EXPECT_TRUE(product.MemberIdOf(0, "Apple").ok());
  EXPECT_TRUE(product.MemberIdOf(1, "Fresh Fruit").ok());
  const Hierarchy& store = schema.hierarchy(3);
  EXPECT_TRUE(store.MemberIdOf(0, "SmartMart").ok());
  EXPECT_TRUE(store.MemberIdOf(2, "Italy").ok());
  EXPECT_TRUE(store.MemberIdOf(2, "France").ok());
  EXPECT_TRUE(sales->Validate().ok());
  EXPECT_EQ(sales->facts().NumRows(), 5000);
  EXPECT_TRUE(schema.hierarchy(0).temporal());
}

TEST(SalesGeneratorTest, AllPaperExampleStatementsRun) {
  auto db = BuildSalesDatabase(SalesConfig{});
  ASSERT_TRUE(db.ok());
  AssessSession session(db->get());
  // Register 5star so the constant statement of Example 4.1 runs verbatim.
  auto stars = RangeLabeling::Make({{0.0, 0.2, true, true, "*"},
                                    {0.2, 0.4, false, true, "**"},
                                    {0.4, 0.6, false, true, "***"},
                                    {0.6, 0.8, false, true, "****"},
                                    {0.8, 1.0, false, true, "*****"}},
                                   "5star");
  ASSERT_TRUE(session.labelings()
                  ->Register(std::make_shared<RangeLabeling>(
                      std::move(*stars)))
                  .ok());
  const char* statements[] = {
      // Example 4.1, statement 1.
      "with SALES by month assess storeSales labels quartiles",
      // Example 4.1, statement 2.
      "with SALES by month assess storeSales against 1000 "
      "using minMaxNorm(difference(storeSales, 1000)) labels 5star",
      // Example 4.1, statement 3 (single-argument percOfTotal as printed).
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using percOfTotal(difference(quantity, benchmark.quantity)) "
      "labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}",
      // Example 4.1, statement 4.
      "with SALES for month = '1997-07', store = 'SmartMart' "
      "by month, store assess storeSales against past 4 "
      "using ratio(storeSales, benchmark.storeSales) "
      "labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}",
      // Example 1.1 (adjusted target value for the generated data volume).
      "with SALES for year = '1997', product = 'milk' by year, product "
      "assess quantity against 10000 using ratio(quantity, 10000) "
      "labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}",
  };
  for (const char* text : statements) {
    auto result = session.Query(text);
    ASSERT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    EXPECT_GT(result->cube.NumRows(), 0) << text;
    EXPECT_FALSE(result->cube.labels().empty()) << text;
  }
}

}  // namespace
}  // namespace assess
