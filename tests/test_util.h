#ifndef ASSESS_TESTS_TEST_UTIL_H_
#define ASSESS_TESTS_TEST_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "assess/result_set.h"
#include "olap/cube.h"
#include "storage/star_schema.h"

namespace assess::testutil {

/// A small, fully deterministic SALES-like database whose aggregates are
/// laid out by hand, so tests can assert exact values. It reproduces the
/// running example of the paper:
///
///  - Fresh-fruit quantities match Figure 1 exactly:
///      Italy:  Apple 100, Pear 90, Lemon 30
///      France: Apple 150, Pear 110, Lemon 20
///  - SmartMart monthly sales 1997-03..07 are 10, 20, 30, 40, 45, so the
///    OLS forecast for 1997-07 from the previous four months is exactly 50.
///
/// Schema: Date (date >= month >= year, temporal), Product (product >=
/// type), Store (store >= country); measures quantity and sales (sums).
struct MiniDb {
  std::unique_ptr<StarDatabase> db;
  std::shared_ptr<CubeSchema> schema;
};

MiniDb BuildMiniSales();

/// Map from coordinate (member names, in axis order) to one measure's value;
/// order-independent cube comparison.
std::map<std::vector<std::string>, double> CellMap(const Cube& cube,
                                                   const std::string& measure);

/// Map from coordinate to label.
std::map<std::vector<std::string>, std::string> LabelMap(const Cube& cube);

/// Coordinate literal usable inside gtest macros (braced initializers split
/// macro arguments): CellMap(...)[K("Apple", "Italy")].
template <typename... Args>
std::vector<std::string> K(Args&&... args) {
  return {std::string(std::forward<Args>(args))...};
}

}  // namespace assess::testutil

#endif  // ASSESS_TESTS_TEST_UTIL_H_
