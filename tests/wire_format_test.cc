// The compact binary wire format for AssessResult and Status: exact
// round-trips (including NaN measures, labels, empty cubes), independence
// from the producer's member-id assignment, and totality of the
// deserializers over truncated and garbage bytes — this is the payload
// format of the assessd protocol, tested here with no server involved.

#include "assess/wire_format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "assess/session.h"
#include "common/rng.h"
#include "olap/hierarchy.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

AssessResult MakeHandcraftedResult() {
  auto dates = std::make_shared<Hierarchy>("Date");
  int month = dates->AddLevel("month");
  dates->AddMember(month, "1997-01");
  dates->AddMember(month, "1997-02");
  dates->AddMember(month, "1997-03");
  auto stores = std::make_shared<Hierarchy>("Store");
  int country = stores->AddLevel("country");
  stores->AddMember(country, "Italy");
  stores->AddMember(country, "France");

  // Deliberately reference members out of id order so the re-dictionarized
  // encoding is exercised.
  Cube cube = Cube::FromColumns(
      {LevelRef{dates, month}, LevelRef{stores, country}},
      {{2, 0, 2, 1}, {1, 1, 0, 0}},
      {"sales", "benchmark.sales", "delta"},
      {{10.5, -3.25, 0.0, 7.0},
       {kNullMeasure, 1e300, -0.0, 42.0},
       {1.0, 2.0, kNullMeasure, std::numeric_limits<double>::infinity()}});
  cube.SetLabels({"good", "bad", "", "good"});

  AssessResult result;
  result.cube = std::move(cube);
  result.measure = "sales";
  result.benchmark_measure = "benchmark.sales";
  result.comparison_measure = "delta";
  result.plan = PlanKind::kJOP;
  result.timings.get_c = 0.25;
  result.timings.get_cb = 1.5;
  result.timings.label = 0.0625;
  result.sql = {"SELECT month, country FROM sales", "SELECT 1"};
  return result;
}

void ExpectResultsIdentical(const AssessResult& a, const AssessResult& b) {
  EXPECT_EQ(a.measure, b.measure);
  EXPECT_EQ(a.benchmark_measure, b.benchmark_measure);
  EXPECT_EQ(a.comparison_measure, b.comparison_measure);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.sql, b.sql);
  EXPECT_EQ(a.timings.Total(), b.timings.Total());
  EXPECT_EQ(a.timings.get_c, b.timings.get_c);
  EXPECT_EQ(a.timings.get_cb, b.timings.get_cb);

  const Cube& lhs = a.cube;
  const Cube& rhs = b.cube;
  ASSERT_EQ(lhs.level_count(), rhs.level_count());
  ASSERT_EQ(lhs.measure_count(), rhs.measure_count());
  ASSERT_EQ(lhs.NumRows(), rhs.NumRows());
  for (int l = 0; l < lhs.level_count(); ++l) {
    EXPECT_EQ(lhs.level(l).name(), rhs.level(l).name());
    EXPECT_EQ(lhs.level(l).hierarchy->name(), rhs.level(l).hierarchy->name());
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      // Coordinates compare by member *name*: ids may legitimately differ
      // (the wire dictionary indexes by first appearance).
      EXPECT_EQ(lhs.CoordName(r, l), rhs.CoordName(r, l));
    }
  }
  for (int m = 0; m < lhs.measure_count(); ++m) {
    EXPECT_EQ(lhs.measure_name(m), rhs.measure_name(m));
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      double x = lhs.MeasureAt(r, m), y = rhs.MeasureAt(r, m);
      // Bit-identity, which distinguishes -0.0 and covers NaN.
      EXPECT_EQ(std::signbit(x), std::signbit(y));
      EXPECT_EQ(std::isnan(x), std::isnan(y));
      if (!std::isnan(x)) {
        EXPECT_EQ(x, y);
      }
    }
  }
  EXPECT_EQ(lhs.labels(), rhs.labels());
  // The user-facing renderings agree exactly.
  EXPECT_EQ(a.ToString(100), b.ToString(100));
  std::ostringstream lhs_csv, rhs_csv;
  a.WriteCsv(lhs_csv);
  b.WriteCsv(rhs_csv);
  EXPECT_EQ(lhs_csv.str(), rhs_csv.str());
}

TEST(WireFormatTest, HandcraftedResultRoundTrips) {
  AssessResult original = MakeHandcraftedResult();
  std::string bytes = SerializeAssessResult(original);
  auto decoded = DeserializeAssessResult(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectResultsIdentical(original, *decoded);
}

TEST(WireFormatTest, ReserializationIsStable) {
  AssessResult original = MakeHandcraftedResult();
  std::string bytes = SerializeAssessResult(original);
  auto decoded = DeserializeAssessResult(bytes);
  ASSERT_TRUE(decoded.ok());
  // decode(encode(x)) re-encodes to the same bytes: the local dictionary
  // order is canonical (first appearance), so the format is a fixpoint.
  EXPECT_EQ(SerializeAssessResult(*decoded), bytes);
}

TEST(WireFormatTest, RealSessionResultRoundTrips) {
  testutil::MiniDb mini = BuildMiniSales();
  AssessSession session(mini.db.get());
  auto result = session.Query(
      "with SALES for country = 'Italy' by product, country assess quantity "
      "against country = 'France' labels quartiles");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto decoded = DeserializeAssessResult(SerializeAssessResult(*result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectResultsIdentical(*result, *decoded);
}

TEST(WireFormatTest, EmptyCubeRoundTrips) {
  AssessResult result;
  result.measure = "m";
  std::string bytes = SerializeAssessResult(result);
  auto decoded = DeserializeAssessResult(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->cube.NumRows(), 0);
  EXPECT_EQ(decoded->cube.level_count(), 0);
  EXPECT_EQ(decoded->measure, "m");
}

TEST(WireFormatTest, StatusRoundTripsEveryCode) {
  const Status cases[] = {
      Status::InvalidArgument("syntax error at 'frobnicate'"),
      Status::NotFound("no cube 'NOPE'"),
      Status::AlreadyExists("dup"),
      Status::OutOfRange("row 9"),
      Status::NotSupported("POP infeasible"),
      Status::Internal("invariant"),
      Status::Unavailable("server overloaded"),
      Status::Timeout("deadline exceeded"),
      Status::CorruptFrame("crc mismatch"),
      Status::FrameTooLarge("17 MiB > 16 MiB cap"),
      Status::OK(),
  };
  for (const Status& original : cases) {
    Status decoded = Status::Internal("sentinel");
    Status parse = DeserializeStatus(SerializeStatus(original), &decoded);
    ASSERT_TRUE(parse.ok()) << parse.ToString();
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

// Property-style: random cubes whose measures are drawn from the IEEE-754
// corner set (NaN, +/-inf, -0.0, denormal, huge) must round-trip
// bit-exactly, including empty results. Seeded, so failures reproduce.
TEST(WireFormatTest, SpecialFloatMeasuresRoundTripExactly) {
  auto dates = std::make_shared<Hierarchy>("Date");
  int month = dates->AddLevel("month");
  for (int m = 0; m < 12; ++m) {
    dates->AddMember(month, "1997-" + std::to_string(m + 1));
  }
  const double corner[] = {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           -0.0,
                           0.0,
                           std::numeric_limits<double>::denorm_min(),
                           -std::numeric_limits<double>::max(),
                           1.0,
                           kNullMeasure};
  constexpr size_t kCorners = sizeof(corner) / sizeof(corner[0]);

  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed * 0x9E37 + 11);
    int64_t rows = static_cast<int64_t>(rng.Uniform(13));  // 0..12: empty too
    int measures = 1 + static_cast<int>(rng.Uniform(3));
    std::vector<std::vector<int32_t>> coords(1);
    for (int64_t r = 0; r < rows; ++r) {
      coords[0].push_back(static_cast<int32_t>(r));
    }
    std::vector<std::string> names;
    std::vector<std::vector<double>> values(measures);
    for (int m = 0; m < measures; ++m) {
      names.push_back("m" + std::to_string(m));
      for (int64_t r = 0; r < rows; ++r) {
        values[m].push_back(corner[rng.Uniform(kCorners)]);
      }
    }
    AssessResult original;
    original.cube = Cube::FromColumns({LevelRef{dates, month}}, coords,
                                      names, values);
    original.measure = "m0";

    auto decoded = DeserializeAssessResult(SerializeAssessResult(original));
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": "
                              << decoded.status().ToString();
    ASSERT_EQ(decoded->cube.NumRows(), rows) << "seed " << seed;
    for (int m = 0; m < measures; ++m) {
      for (int64_t r = 0; r < rows; ++r) {
        double want = original.cube.MeasureAt(r, m);
        double got = decoded->cube.MeasureAt(r, m);
        // Bit-exact, not value-equal: distinguishes -0.0 from 0.0 and
        // compares NaN payloads.
        uint64_t want_bits, got_bits;
        std::memcpy(&want_bits, &want, sizeof(want));
        std::memcpy(&got_bits, &got, sizeof(got));
        ASSERT_EQ(want_bits, got_bits)
            << "seed " << seed << " row " << r << " measure " << m;
      }
    }
    // And the re-encoding is a fixpoint even for special values.
    EXPECT_EQ(SerializeAssessResult(*decoded), SerializeAssessResult(original))
        << "seed " << seed;
  }
}

TEST(WireFormatTest, EveryTruncationFailsGracefully) {
  std::string bytes = SerializeAssessResult(MakeHandcraftedResult());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DeserializeAssessResult(std::string_view(bytes).substr(
        0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  std::string status_bytes = SerializeStatus(Status::NotFound("x"));
  for (size_t len = 0; len < status_bytes.size(); ++len) {
    Status out = Status::OK();
    EXPECT_FALSE(
        DeserializeStatus(std::string_view(status_bytes).substr(0, len), &out)
            .ok());
  }
}

TEST(WireFormatTest, TrailingBytesRejected) {
  std::string bytes = SerializeAssessResult(MakeHandcraftedResult());
  bytes.push_back('\0');
  EXPECT_FALSE(DeserializeAssessResult(bytes).ok());
}

TEST(WireFormatTest, GarbageBytesFailGracefully) {
  // Deterministic fuzz: random buffers and bit-flipped valid encodings must
  // error out, never crash or allocate unboundedly.
  Rng rng(20260806);
  std::string valid = SerializeAssessResult(MakeHandcraftedResult());
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(static_cast<size_t>(rng.UniformRange(0, 64)), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformRange(0, 255));
    }
    (void)DeserializeAssessResult(garbage);
    Status out = Status::OK();
    (void)DeserializeStatus(garbage, &out);

    std::string flipped = valid;
    size_t at = static_cast<size_t>(rng.UniformRange(
        0, static_cast<int64_t>(flipped.size()) - 1));
    flipped[at] = static_cast<char>(flipped[at] ^
                                    (1 << rng.UniformRange(0, 7)));
    auto decoded = DeserializeAssessResult(flipped);
    if (decoded.ok()) {
      // A flipped measure bit can still decode; it must then round-trip.
      EXPECT_EQ(SerializeAssessResult(*decoded).size(), flipped.size());
    }
  }
}

TEST(WireFormatTest, HostileCountsDoNotAllocate) {
  // A result header claiming 2^40 levels must be rejected by the byte
  // budget check, not by an allocation attempt.
  std::string bytes;
  bytes.push_back('A');
  bytes.push_back(0x01);
  bytes.push_back(0x00);                   // plan NP
  bytes.append(7 * 8, '\0');               // timings
  bytes.append(3, '\0');                   // three empty strings
  bytes.push_back(0x00);                   // no sql
  // n_levels = huge varint
  bytes.append({'\xff', '\xff', '\xff', '\xff', '\xff', '\x1f'});
  auto decoded = DeserializeAssessResult(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("count exceeds"),
            std::string::npos)
      << decoded.status().ToString();
}

}  // namespace
}  // namespace assess
