// Tests for the future-work extensions of Section 8 implemented here:
// ancestor (roll-up) benchmarks and derived-measure support in using
// clauses (case (5) of the paper's introduction).

#include <gtest/gtest.h>

#include "assess/session.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;
using ::assess::testutil::K;
using ::assess::testutil::LabelMap;

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : mini_(BuildMiniSales()), session_(mini_.db.get()) {}

  AssessResult Run(const std::string& text, PlanKind plan) {
    auto result = session_.Query(text, plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  testutil::MiniDb mini_;
  AssessSession session_;
};

constexpr const char* kAncestorStatement =
    "with SALES for product = 'Apple' by product, country "
    "assess quantity against type "
    "using ratio(quantity, benchmark.quantity) "
    "labels {[0, 0.5]: minor, (0.5, 1]: major}";

TEST_F(ExtensionsTest, AncestorParsesAndAnalyzes) {
  auto analyzed = session_.Prepare(kAncestorStatement);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ(analyzed->type, BenchmarkType::kAncestor);
  EXPECT_EQ(analyzed->ancestor_level, "type");
  EXPECT_EQ(analyzed->ancestor_member, "Fresh Fruit");
  EXPECT_EQ(analyzed->sliced_level, "product");
  EXPECT_EQ(analyzed->sliced_member, "Apple");
  EXPECT_EQ(analyzed->join_levels, std::vector<std::string>{"country"});
  EXPECT_EQ(analyzed->benchmark_measure_name, "benchmark.quantity");
  // The benchmark groups by the ancestor level.
  EXPECT_TRUE(analyzed->benchmark.group_by.HasHierarchy(1));
  EXPECT_EQ(analyzed->benchmark.group_by.LevelOf(1), 1);  // type
}

TEST_F(ExtensionsTest, AncestorSharesOfTheRollUpTotal) {
  AssessResult r = Run(kAncestorStatement, PlanKind::kNP);
  ASSERT_EQ(r.cube.NumRows(), 2);
  auto benchmark = CellMap(r.cube, "benchmark.quantity");
  // Fresh Fruit totals: Italy 220, France 280 (Figure 1 numbers).
  EXPECT_EQ(benchmark[K("Apple", "Italy")], 220);
  EXPECT_EQ(benchmark[K("Apple", "France")], 280);
  auto ratio = CellMap(r.cube, r.comparison_measure);
  EXPECT_NEAR(ratio[K("Apple", "Italy")], 100.0 / 220.0, 1e-12);
  EXPECT_NEAR(ratio[K("Apple", "France")], 150.0 / 280.0, 1e-12);
  auto labels = LabelMap(r.cube);
  EXPECT_EQ(labels[K("Apple", "Italy")], "minor");
  EXPECT_EQ(labels[K("Apple", "France")], "major");
}

TEST_F(ExtensionsTest, AncestorNpAndJopAgree) {
  AssessResult np = Run(kAncestorStatement, PlanKind::kNP);
  AssessResult jop = Run(kAncestorStatement, PlanKind::kJOP);
  EXPECT_EQ(CellMap(np.cube, np.comparison_measure),
            CellMap(jop.cube, jop.comparison_measure));
  EXPECT_EQ(LabelMap(np.cube), LabelMap(jop.cube));
  EXPECT_EQ(jop.sql.size(), 1u);
  EXPECT_EQ(np.sql.size(), 2u);
}

TEST_F(ExtensionsTest, AncestorPopIsInfeasible) {
  auto analyzed = session_.Prepare(kAncestorStatement);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(FeasiblePlans(*analyzed),
            (std::vector<PlanKind>{PlanKind::kNP, PlanKind::kJOP}));
  EXPECT_EQ(BestPlan(*analyzed), PlanKind::kJOP);
  EXPECT_EQ(session_.Query(kAncestorStatement, PlanKind::kPOP).status().code(),
            StatusCode::kNotSupported);
}

TEST_F(ExtensionsTest, AncestorExplainMentionsRollUp) {
  auto text = session_.Explain(kAncestorStatement, PlanKind::kNP);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("ancestor 'Fresh Fruit'"), std::string::npos);
}

TEST_F(ExtensionsTest, AncestorNeedsFinerSliceInBy) {
  // No product slice at all.
  auto r = session_.Prepare(
      "with SALES by product, country assess quantity against type "
      "labels quartiles");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ancestor"), std::string::npos);
  // Slice exists but the against level is not coarser than it.
  auto same = session_.Prepare(
      "with SALES for type = 'Dairy' by type assess quantity against type "
      "labels quartiles");
  EXPECT_FALSE(same.ok());
  // Unknown level.
  auto unknown = session_.Prepare(
      "with SALES for product = 'Apple' by product assess quantity "
      "against galaxy labels quartiles");
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST_F(ExtensionsTest, AncestorWithEmptyJoinLevels) {
  // Group by the sliced level only: the partial join degenerates to pairing
  // the single target cell with the single ancestor cell.
  AssessResult r = Run(
      "with SALES for product = 'milk' by product assess sales against "
      "type using percentage(sales, benchmark.sales) "
      "labels {[0, 100]: share}",
      PlanKind::kNP);
  ASSERT_EQ(r.cube.NumRows(), 1);
  auto pct = CellMap(r.cube, r.comparison_measure);
  // milk is the only Dairy product, so it is 100% of its type.
  EXPECT_NEAR(pct[K("milk")], 100.0, 1e-9);
}

// --- Derived measures ---------------------------------------------------

TEST_F(ExtensionsTest, PlainDerivedMeasureIsFetched) {
  AssessResult r = Run(
      "with SALES by store assess sales "
      "using difference(sales, quantity) "
      "labels {[-inf, inf]: any}",
      PlanKind::kNP);
  auto diff = CellMap(r.cube, r.comparison_measure);
  // SmartMart: sales 145, quantity 220 -> -75; PetitPrix: 68 - 280 = -212.
  EXPECT_EQ(diff[K("SmartMart")], -75);
  EXPECT_EQ(diff[K("PetitPrix")], -212);
}

TEST_F(ExtensionsTest, BenchmarkDerivedMeasureAcrossSiblingSlices) {
  // Compare Italian fruit quantities against French fruit *sales* (always 0
  // in the fixture), exercising a benchmark measure different from m.
  const char* text =
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using difference(quantity, benchmark.sales) "
      "labels {[-inf, inf]: any}";
  AssessResult np = Run(text, PlanKind::kNP);
  auto diff = CellMap(np.cube, np.comparison_measure);
  EXPECT_EQ(diff[K("Apple", "Italy")], 100);  // benchmark.sales = 0
  EXPECT_EQ(diff[K("Lemon", "Italy")], 30);
  // All plans agree even with widened measure sets.
  AssessResult jop = Run(text, PlanKind::kJOP);
  AssessResult pop = Run(text, PlanKind::kPOP);
  EXPECT_EQ(CellMap(jop.cube, jop.comparison_measure), diff);
  EXPECT_EQ(CellMap(pop.cube, pop.comparison_measure), diff);
}

TEST_F(ExtensionsTest, DerivedMeasureWithPastKeepsAllPlans) {
  const char* text =
      "with SALES for month = '1997-07' by month, store "
      "assess sales against past 4 "
      "using percOfTotal(difference(sales, benchmark.sales), quantity) "
      "labels {[-inf, inf]: any}";
  AssessResult np = Run(text, PlanKind::kNP);
  AssessResult jop = Run(text, PlanKind::kJOP);
  AssessResult pop = Run(text, PlanKind::kPOP);
  auto expected = CellMap(np.cube, np.comparison_measure);
  ASSERT_EQ(expected.size(), 2u);
  for (const auto& [coord, value] : CellMap(jop.cube, jop.comparison_measure)) {
    EXPECT_NEAR(value, expected[coord], 1e-9);
  }
  for (const auto& [coord, value] : CellMap(pop.cube, pop.comparison_measure)) {
    EXPECT_NEAR(value, expected[coord], 1e-9);
  }
}

TEST_F(ExtensionsTest, BenchmarkRefOnConstantIsRejected) {
  auto r = session_.Prepare(
      "with SALES by store assess sales against 10 "
      "using difference(sales, benchmark.sales) labels quartiles");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("constant"), std::string::npos);
}

TEST_F(ExtensionsTest, PastForecastsOnlyTheAssessedMeasure) {
  auto r = session_.Prepare(
      "with SALES for month = '1997-07' by month, store "
      "assess sales against past 2 "
      "using difference(sales, benchmark.quantity) labels quartiles");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("forecast"), std::string::npos);
}

// --- Descriptive level properties ----------------------------------------

TEST_F(ExtensionsTest, PerCapitaComparisonViaProperty) {
  // Fixture populations: Italy 60, France 70 (millions). Fresh fruit
  // quantities per country: Italy 220, France 280.
  AssessResult r = Run(
      "with SALES for type = 'Fresh Fruit' by country assess quantity "
      "using ratio(quantity, property(country, population)) "
      "labels {[0, 3.8): low, [3.8, inf): high}",
      PlanKind::kNP);
  ASSERT_EQ(r.cube.NumRows(), 2);
  auto per_capita = CellMap(r.cube, r.comparison_measure);
  EXPECT_NEAR(per_capita[K("Italy")], 220.0 / 60.0, 1e-12);   // ~3.67
  EXPECT_NEAR(per_capita[K("France")], 280.0 / 70.0, 1e-12);  // 4.0
  auto labels = LabelMap(r.cube);
  EXPECT_EQ(labels[K("Italy")], "low");
  EXPECT_EQ(labels[K("France")], "high");
  // The materialized property column is visible in the result cube.
  EXPECT_TRUE(r.cube.MeasureIndex("country.population").ok());
}

TEST_F(ExtensionsTest, PropertyCombinesWithSiblingBenchmarks) {
  // Per-capita sibling comparison: Italy's per-capita fruit quantity vs
  // France's total quantity scaled by Italy's population... i.e. the
  // property column joins the target side of the comparison.
  const char* text =
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using difference(ratio(quantity, property(country, population)), "
      "ratio(benchmark.quantity, property(country, population))) "
      "labels {[-inf, 0): behind, [0, inf]: ahead}";
  AssessResult np = Run(text, PlanKind::kNP);
  AssessResult pop = Run(text, PlanKind::kPOP);
  // Apple: (100 - 150) / 60 < 0 -> behind.
  auto labels = LabelMap(np.cube);
  EXPECT_EQ(labels[K("Apple", "Italy")], "behind");
  EXPECT_EQ(LabelMap(pop.cube), labels);
}

TEST_F(ExtensionsTest, PropertyLevelMustBeInByClause) {
  auto r = session_.Prepare(
      "with SALES by product assess quantity "
      "using ratio(quantity, property(country, population)) "
      "labels quartiles");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("by clause"), std::string::npos);
}

TEST_F(ExtensionsTest, UnknownPropertyIsRejected) {
  auto r = session_.Prepare(
      "with SALES by country assess quantity "
      "using ratio(quantity, property(country, gdp)) labels quartiles");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExtensionsTest, MalformedPropertyCallIsRejected) {
  auto one_arg = session_.Prepare(
      "with SALES by country assess quantity "
      "using ratio(quantity, property(country)) labels quartiles");
  EXPECT_EQ(one_arg.status().code(), StatusCode::kInvalidArgument);
  auto number_arg = session_.Prepare(
      "with SALES by country assess quantity "
      "using ratio(quantity, property(country, 42)) labels quartiles");
  EXPECT_EQ(number_arg.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExtensionsTest, UnsetPropertyMembersYieldNullComparisons) {
  Hierarchy& store =
      const_cast<Hierarchy&>(mini_.schema->hierarchy(2));
  // Define a property on one country only; the other gets a null label.
  store.SetProperty(1, "area", "Italy", 302.0);
  AssessResult r = Run(
      "with SALES for type = 'Fresh Fruit' by country assess* quantity "
      "using ratio(quantity, property(country, area)) "
      "labels {[-inf, inf]: known}",
      PlanKind::kNP);
  auto labels = LabelMap(r.cube);
  EXPECT_EQ(labels[K("Italy")], "known");
  EXPECT_EQ(labels[K("France")], "");
}

TEST_F(ExtensionsTest, UnknownDerivedMeasureIsRejected) {
  auto r = session_.Prepare(
      "with SALES by store assess sales using difference(sales, profit) "
      "labels quartiles");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace assess
