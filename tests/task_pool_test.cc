// The work-stealing morsel pool underneath every scan: completeness (each
// morsel runs exactly once), error propagation (first failure wins and stops
// the job), and liveness (the submitting thread always participates, so a
// saturated or empty pool can never deadlock a query).

#include "common/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace assess {
namespace {

TEST(TaskPoolTest, EveryMorselRunsExactlyOnce) {
  TaskPool pool(4);
  constexpr int64_t kMorsels = 1000;
  std::vector<std::atomic<int>> runs(kMorsels);
  Status status = pool.RunMorsels(kMorsels, 4, [&](int64_t m) {
    runs[m].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (int64_t m = 0; m < kMorsels; ++m) {
    EXPECT_EQ(runs[m].load(), 1) << "morsel " << m;
  }
  TaskPoolStats stats = pool.stats();
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.jobs_run, 1u);
  EXPECT_EQ(stats.morsels_run, static_cast<uint64_t>(kMorsels));
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(TaskPoolTest, SerialInlinePathRunsInOrder) {
  // One participant must run every morsel inline on the caller, in index
  // order — the code path small scans and threads=1 take.
  for (int workers : {1, 3}) {
    TaskPool pool(workers);
    std::vector<int64_t> order;
    Status status = pool.RunMorsels(8, 1, [&](int64_t m) {
      order.push_back(m);  // unsynchronized on purpose: must be caller-only
      return Status::OK();
    });
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(order.size(), 8u);
    for (int64_t m = 0; m < 8; ++m) EXPECT_EQ(order[m], m);
  }
}

TEST(TaskPoolTest, FirstErrorWinsAndStopsClaiming) {
  TaskPool pool(4);
  constexpr int64_t kMorsels = 10000;
  std::atomic<int64_t> ran{0};
  Status status = pool.RunMorsels(kMorsels, 4, [&](int64_t m) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (m == 7) return Status::Internal("morsel 7 exploded");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("morsel 7"), std::string::npos);
  // The job stops claiming after the failure: nowhere near all morsels ran.
  EXPECT_LT(ran.load(), kMorsels);
}

TEST(TaskPoolTest, CallerParticipatesSoSaturationCannotDeadlock) {
  // Occupy every pool worker with one long job, then submit another from
  // this thread: it must finish because the submitter drains it alone.
  TaskPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> blocked{0};
  std::thread hog([&] {
    // 3 morsels, 3 participants: the hog thread plus both pool workers all
    // park inside a morsel until released — the pool is fully saturated.
    Status status = pool.RunMorsels(3, 3, [&](int64_t) {
      blocked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      return Status::OK();
    });
    EXPECT_TRUE(status.ok());
  });
  while (blocked.load() < 3) std::this_thread::yield();

  std::atomic<int64_t> ran{0};
  Status status = pool.RunMorsels(64, 2, [&](int64_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(ran.load(), 64);

  release.store(true);
  hog.join();
}

TEST(TaskPoolTest, ConcurrentJobsShareOneWorkerSet) {
  TaskPool pool(4);
  constexpr int kJobs = 8;
  constexpr int64_t kMorsels = 256;
  std::vector<std::thread> submitters;
  std::atomic<int64_t> total{0};
  for (int j = 0; j < kJobs; ++j) {
    submitters.emplace_back([&] {
      Status status = pool.RunMorsels(kMorsels, 0, [&](int64_t) {
        total.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
      EXPECT_TRUE(status.ok());
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), kJobs * kMorsels);
  EXPECT_EQ(pool.stats().jobs_run, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(pool.stats().queue_depth, 0u);
}

TEST(TaskPoolTest, ScanCountsAccumulate) {
  TaskPool pool(1);
  pool.AddScanCounts(10, 3);
  pool.AddScanCounts(5, 0);
  TaskPoolStats stats = pool.stats();
  EXPECT_EQ(stats.morsels_scanned, 15u);
  EXPECT_EQ(stats.morsels_skipped, 3u);
}

TEST(TaskPoolTest, SharedPoolIsOneInstance) {
  const std::shared_ptr<TaskPool>& a = TaskPool::Shared();
  const std::shared_ptr<TaskPool>& b = TaskPool::Shared();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(a->parallelism(), 1);
}

TEST(TaskPoolTest, ZeroMorselJobIsANoOp) {
  TaskPool pool(2);
  Status status =
      pool.RunMorsels(0, 4, [&](int64_t) { return Status::Internal("never"); });
  EXPECT_TRUE(status.ok());
}

}  // namespace
}  // namespace assess
