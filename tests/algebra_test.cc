#include "algebra/operators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;
using ::assess::testutil::K;

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() {
    products_ = std::make_shared<Hierarchy>("Product");
    products_->AddLevel("product");
    for (const char* p : {"Apple", "Pear", "Lemon"}) products_->AddMember(0, p);
    countries_ = std::make_shared<Hierarchy>("Store");
    countries_->AddLevel("country");
    for (const char* c : {"Italy", "France"}) countries_->AddMember(0, c);
  }

  // The target cube C of Figure 1 (Italy slice).
  Cube MakeItaly() {
    Cube cube({LevelRef{products_, 0}, LevelRef{countries_, 0}}, {"quantity"});
    cube.AddRow({0, 0}, {100});
    cube.AddRow({1, 0}, {90});
    cube.AddRow({2, 0}, {30});
    return cube;
  }

  // The benchmark cube B of Figure 1 (France slice).
  Cube MakeFrance() {
    Cube cube({LevelRef{products_, 0}, LevelRef{countries_, 0}}, {"quantity"});
    cube.AddRow({0, 1}, {150});
    cube.AddRow({1, 1}, {110});
    cube.AddRow({2, 1}, {20});
    return cube;
  }

  // Both slices (the cube C' of Figure 2).
  Cube MakeBoth() {
    Cube cube = MakeItaly();
    cube.AddRow({0, 1}, {150});
    cube.AddRow({1, 1}, {110});
    cube.AddRow({2, 1}, {20});
    return cube;
  }

  std::shared_ptr<Hierarchy> products_;
  std::shared_ptr<Hierarchy> countries_;
};

// --- Join (Figure 1, cube D) -----------------------------------------------

TEST_F(AlgebraTest, PartialJoinReproducesFigure1) {
  Cube d = *JoinCubes(MakeItaly(), MakeFrance(), {"product"}, "benchmark",
                      /*left_outer=*/false);
  EXPECT_EQ(d.NumRows(), 3);
  auto bc = CellMap(d, "benchmark.quantity");
  EXPECT_EQ(bc[K("Apple", "Italy")], 150);
  EXPECT_EQ(bc[K("Pear", "Italy")], 110);
  EXPECT_EQ(bc[K("Lemon", "Italy")], 20);
  // Left coordinates survive (country stays Italy).
  auto own = CellMap(d, "quantity");
  EXPECT_EQ(own[K("Apple", "Italy")], 100);
}

TEST_F(AlgebraTest, InnerJoinDropsNonMatching) {
  Cube france = MakeFrance();
  Cube italy_extra = MakeItaly();
  // Add a product sold only in Italy... reuse Lemon slot: new member.
  MemberId kiwi = products_->AddMember(0, "Kiwi");
  italy_extra.AddRow({kiwi, 0}, {5});
  Cube d = *JoinCubes(italy_extra, france, {"product"}, "benchmark", false);
  EXPECT_EQ(d.NumRows(), 3);
  EXPECT_EQ(CellMap(d, "quantity").count(K("Kiwi", "Italy")), 0u);
}

TEST_F(AlgebraTest, LeftOuterJoinKeepsNonMatchingWithNulls) {
  Cube italy = MakeItaly();
  MemberId kiwi = products_->AddMember(0, "Kiwi");
  italy.AddRow({kiwi, 0}, {5});
  Cube d = *JoinCubes(italy, MakeFrance(), {"product"}, "benchmark", true);
  EXPECT_EQ(d.NumRows(), 4);
  auto bc = CellMap(d, "benchmark.quantity");
  EXPECT_TRUE(std::isnan(bc[K("Kiwi", "Italy")]));
  EXPECT_EQ(bc[K("Apple", "Italy")], 150);
}

TEST_F(AlgebraTest, NaturalJoinOnAllLevels) {
  Cube both = MakeBoth();
  Cube d = *JoinCubes(both, both, {"product", "country"}, "b", false);
  EXPECT_EQ(d.NumRows(), 6);
  auto bc = CellMap(d, "b.quantity");
  EXPECT_EQ(bc[K("Apple", "France")], 150);
}

TEST_F(AlgebraTest, MultiMatchJoinEmitsOneRowPerPair) {
  // Joining Italy against both slices on product yields two rows per
  // product (the general ⋈ with p matches).
  Cube d = *JoinCubes(MakeItaly(), MakeBoth(), {"product"}, "b", false);
  EXPECT_EQ(d.NumRows(), 6);
}

TEST_F(AlgebraTest, JoinUnknownLevelFails) {
  EXPECT_FALSE(JoinCubes(MakeItaly(), MakeFrance(), {"month"}, "b", false).ok());
}

// --- Concatenating join -----------------------------------------------------

TEST_F(AlgebraTest, ConcatJoinOrdersSlotsByOrderLevel) {
  // Right cube: two country slices; join on product concatenates both
  // quantities ordered by country member id (Italy=0, France=1).
  Cube left = MakeItaly();
  Cube right = MakeBoth();
  Cube d = *ConcatJoinCubes(left, right, {"product"}, "country", 2,
                            {{"first"}, {"second"}}, true);
  EXPECT_EQ(d.NumRows(), 3);
  auto first = CellMap(d, "first");
  auto second = CellMap(d, "second");
  EXPECT_EQ(first[K("Apple", "Italy")], 100);   // Italy slice
  EXPECT_EQ(second[K("Apple", "Italy")], 150);  // France slice
}

TEST_F(AlgebraTest, ConcatJoinRequireCompleteDropsPartial) {
  Cube left = MakeItaly();
  Cube right = MakeFrance();  // only one slice: 1 match < expected 2
  Cube strict = *ConcatJoinCubes(left, right, {"product"}, "country", 2,
                                 {{"first"}, {"second"}}, true);
  EXPECT_EQ(strict.NumRows(), 0);
  Cube lax = *ConcatJoinCubes(left, right, {"product"}, "country", 2,
                              {{"first"}, {"second"}}, false);
  EXPECT_EQ(lax.NumRows(), 3);
  auto second = CellMap(lax, "second");
  EXPECT_TRUE(std::isnan(second[K("Apple", "Italy")]));
}

TEST_F(AlgebraTest, ConcatJoinValidatesSlotNames) {
  EXPECT_FALSE(ConcatJoinCubes(MakeItaly(), MakeBoth(), {"product"},
                               "country", 2, {{"only_one"}}, true)
                   .ok());
  EXPECT_FALSE(ConcatJoinCubes(MakeItaly(), MakeBoth(), {"product"},
                               "country", 2, {{"a", "extra"}, {"b"}}, true)
                   .ok());
}

// --- Pivot (Figure 2, cube D') ----------------------------------------------

TEST_F(AlgebraTest, PivotReproducesFigure2) {
  Cube d = *PivotCube(MakeBoth(), "country", "Italy", {"France"},
                      {{"qtyFrance"}}, true);
  EXPECT_EQ(d.NumRows(), 3);
  auto own = CellMap(d, "quantity");
  auto fr = CellMap(d, "qtyFrance");
  EXPECT_EQ(own[K("Apple", "Italy")], 100);
  EXPECT_EQ(fr[K("Apple", "Italy")], 150);
  EXPECT_EQ(fr[K("Pear", "Italy")], 110);
  EXPECT_EQ(fr[K("Lemon", "Italy")], 20);
}

TEST_F(AlgebraTest, PivotRequireCompleteFiltersLikeListing5) {
  Cube both = MakeBoth();
  MemberId kiwi = products_->AddMember(0, "Kiwi");
  both.AddRow({kiwi, 0}, {5});  // Kiwi sold in Italy only
  Cube strict = *PivotCube(both, "country", "Italy", {"France"},
                           {{"qtyFrance"}}, true);
  EXPECT_EQ(strict.NumRows(), 3);
  Cube lax = *PivotCube(both, "country", "Italy", {"France"},
                        {{"qtyFrance"}}, false);
  EXPECT_EQ(lax.NumRows(), 4);
  auto fr = CellMap(lax, "qtyFrance");
  EXPECT_TRUE(std::isnan(fr[K("Kiwi", "Italy")]));
}

TEST_F(AlgebraTest, PivotKeepsOnlyReferenceSlice) {
  Cube d = *PivotCube(MakeBoth(), "country", "France", {"Italy"},
                      {{"qtyItaly"}}, true);
  for (int64_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(d.CoordName(r, 1), "France");
  }
}

TEST_F(AlgebraTest, PivotErrors) {
  EXPECT_FALSE(
      PivotCube(MakeBoth(), "month", "Italy", {"France"}, {{"x"}}, true).ok());
  EXPECT_FALSE(PivotCube(MakeBoth(), "country", "Atlantis", {"France"},
                         {{"x"}}, true)
                   .ok());
  EXPECT_FALSE(
      PivotCube(MakeBoth(), "country", "Italy", {"France"}, {}, true).ok());
  EXPECT_FALSE(PivotCube(MakeBoth(), "country", "Italy", {"France"},
                         {{"x", "too_many"}}, true)
                   .ok());
}

// --- Transforms --------------------------------------------------------------

TEST_F(AlgebraTest, CellTransformAddsMeasure) {
  Cube d = *JoinCubes(MakeItaly(), MakeFrance(), {"product"}, "benchmark",
                      false);
  ASSERT_TRUE(CellTransform(&d, "diff", {"quantity", "benchmark.quantity"},
                            [](std::span<const double> a) {
                              return a[0] - a[1];
                            })
                  .ok());
  auto diff = CellMap(d, "diff");
  EXPECT_EQ(diff[K("Apple", "Italy")], -50);
  EXPECT_EQ(diff[K("Pear", "Italy")], -20);
  EXPECT_EQ(diff[K("Lemon", "Italy")], 10);
}

TEST_F(AlgebraTest, CellTransformNullPropagation) {
  Cube cube = MakeItaly();
  cube.AddMeasureColumn("maybe");  // all null
  ASSERT_TRUE(CellTransform(&cube, "strict", {"maybe"},
                            [](std::span<const double>) { return 1.0; })
                  .ok());
  ASSERT_TRUE(CellTransform(&cube, "lax", {"maybe"},
                            [](std::span<const double>) { return 1.0; },
                            /*null_propagates=*/false)
                  .ok());
  EXPECT_TRUE(std::isnan(cube.MeasureAt(0, *cube.MeasureIndex("strict"))));
  EXPECT_EQ(cube.MeasureAt(0, *cube.MeasureIndex("lax")), 1.0);
}

TEST_F(AlgebraTest, CellTransformUnknownInputFails) {
  Cube cube = MakeItaly();
  EXPECT_FALSE(CellTransform(&cube, "x", {"nope"},
                             [](std::span<const double>) { return 0.0; })
                   .ok());
}

TEST_F(AlgebraTest, HTransformSeesWholeColumn) {
  Cube cube = MakeItaly();
  ASSERT_TRUE(
      HTransform(&cube, "share", {"quantity"},
                 [](const std::vector<std::span<const double>>& in,
                    std::span<double> out) {
                   double total = 0;
                   for (double v : in[0]) total += v;
                   for (size_t i = 0; i < out.size(); ++i) {
                     out[i] = in[0][i] / total;
                   }
                   return Status::OK();
                 })
          .ok());
  auto share = CellMap(cube, "share");
  EXPECT_DOUBLE_EQ(share[K("Apple", "Italy")], 100.0 / 220.0);
}

// Property P1: transforms adding independent measures commute.
TEST_F(AlgebraTest, TransformCommutativityP1) {
  auto f = [](std::span<const double> a) { return a[0] * 2; };
  auto g = [](std::span<const double> a) { return a[0] + 1; };
  Cube fg = MakeItaly();
  ASSERT_TRUE(CellTransform(&fg, "f", {"quantity"}, f).ok());
  ASSERT_TRUE(CellTransform(&fg, "g", {"quantity"}, g).ok());
  Cube gf = MakeItaly();
  ASSERT_TRUE(CellTransform(&gf, "g", {"quantity"}, g).ok());
  ASSERT_TRUE(CellTransform(&gf, "f", {"quantity"}, f).ok());
  EXPECT_EQ(CellMap(fg, "f"), CellMap(gf, "f"));
  EXPECT_EQ(CellMap(fg, "g"), CellMap(gf, "g"));
}

TEST_F(AlgebraTest, ProjectMeasuresRenames) {
  Cube cube = MakeItaly();
  cube.AddMeasureColumn("predicted");
  cube.SetMeasure(0, 1, 42);
  Cube projected = *ProjectMeasures(cube, {{"predicted", "quantity"}});
  EXPECT_EQ(projected.measure_count(), 1);
  EXPECT_EQ(projected.measure_name(0), "quantity");
  EXPECT_EQ(projected.MeasureAt(0, 0), 42);
  EXPECT_EQ(projected.NumRows(), cube.NumRows());
  EXPECT_FALSE(ProjectMeasures(cube, {{"ghost", "x"}}).ok());
}

TEST_F(AlgebraTest, AddConstantMeasure) {
  Cube cube = MakeItaly();
  AddConstantMeasure(&cube, "benchmark", 1000);
  auto bc = CellMap(cube, "benchmark");
  EXPECT_EQ(bc[K("Apple", "Italy")], 1000);
  EXPECT_EQ(bc[K("Lemon", "Italy")], 1000);
}

TEST_F(AlgebraTest, TransferToClientIsDeepEqualCopy) {
  Cube cube = MakeItaly();
  cube.AddMeasureColumn("extra");
  Cube copy = TransferToClient(cube);
  EXPECT_EQ(copy.NumRows(), cube.NumRows());
  EXPECT_EQ(copy.measure_count(), cube.measure_count());
  EXPECT_EQ(CellMap(copy, "quantity"), CellMap(cube, "quantity"));
  // Mutating the copy leaves the original untouched.
  copy.SetMeasure(0, 0, -1);
  EXPECT_EQ(cube.MeasureAt(0, 0), 100);
}

}  // namespace
}  // namespace assess
