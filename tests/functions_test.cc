#include "functions/function_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "functions/builtin_functions.h"
#include "functions/expression.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;
using ::assess::testutil::K;

class BuiltinCellTest : public ::testing::Test {
 protected:
  BuiltinCellTest() : registry_(FunctionRegistry::Default()) {}

  double Eval(const std::string& name, std::vector<double> args) {
    auto def = registry_.Find(name);
    EXPECT_TRUE(def.ok());
    return (*def)->cell(std::span<const double>(args));
  }

  FunctionRegistry registry_;
};

TEST_F(BuiltinCellTest, Difference) { EXPECT_EQ(Eval("difference", {7, 3}), 4); }

TEST_F(BuiltinCellTest, AbsoluteDifference) {
  EXPECT_EQ(Eval("absoluteDifference", {3, 7}), 4);
}

TEST_F(BuiltinCellTest, Ratio) {
  EXPECT_EQ(Eval("ratio", {6, 3}), 2);
  EXPECT_TRUE(std::isnan(Eval("ratio", {6, 0})));
}

TEST_F(BuiltinCellTest, Percentage) {
  EXPECT_EQ(Eval("percentage", {1, 4}), 25);
  EXPECT_TRUE(std::isnan(Eval("percentage", {1, 0})));
}

TEST_F(BuiltinCellTest, NormalizedDifference) {
  EXPECT_EQ(Eval("normalizedDifference", {110, 100}), 0.1);
  EXPECT_TRUE(std::isnan(Eval("normalizedDifference", {1, 0})));
}

TEST_F(BuiltinCellTest, UnaryHelpers) {
  EXPECT_EQ(Eval("identity", {5}), 5);
  EXPECT_EQ(Eval("neg", {5}), -5);
  EXPECT_EQ(Eval("abs", {-5}), 5);
}

class BuiltinHolisticTest : public ::testing::Test {
 protected:
  BuiltinHolisticTest() : registry_(FunctionRegistry::Default()) {}

  std::vector<double> Eval(const std::string& name,
                           std::vector<std::vector<double>> columns) {
    auto def = registry_.Find(name);
    EXPECT_TRUE(def.ok());
    std::vector<std::span<const double>> inputs;
    for (const auto& col : columns) inputs.emplace_back(col.data(), col.size());
    std::vector<double> out(columns[0].size());
    Status st = (*def)->holistic(inputs, std::span<double>(out));
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  FunctionRegistry registry_;
};

TEST_F(BuiltinHolisticTest, MinMaxNorm) {
  auto out = Eval("minMaxNorm", {{10, 20, 30}});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST_F(BuiltinHolisticTest, MinMaxNormDegenerate) {
  auto out = Eval("minMaxNorm", {{7, 7, 7}});
  EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST_F(BuiltinHolisticTest, MinMaxNormSkipsNulls) {
  auto out = Eval("minMaxNorm", {{10, kNullMeasure, 30}});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST_F(BuiltinHolisticTest, ZScore) {
  auto out = Eval("zscore", {{2, 4, 4, 4, 5, 5, 7, 9}});
  EXPECT_DOUBLE_EQ(out[0], -1.5);  // mean 5, stddev 2
  EXPECT_DOUBLE_EQ(out[7], 2.0);
}

TEST_F(BuiltinHolisticTest, ZScoreDegenerate) {
  auto out = Eval("zscore", {{3, 3, 3}});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST_F(BuiltinHolisticTest, PercOfTotalTwoArgs) {
  auto out = Eval("percOfTotal", {{-50, -20, 10}, {100, 90, 30}});
  EXPECT_DOUBLE_EQ(out[0], -50.0 / 220.0);
  EXPECT_DOUBLE_EQ(out[1], -20.0 / 220.0);
  EXPECT_DOUBLE_EQ(out[2], 10.0 / 220.0);
}

TEST_F(BuiltinHolisticTest, PercOfTotalOneArg) {
  auto out = Eval("percOfTotal", {{1, 3}});
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.75);
}

TEST_F(BuiltinHolisticTest, PercOfTotalZeroTotal) {
  auto out = Eval("percOfTotal", {{1, 2}, {5, -5}});
  EXPECT_TRUE(std::isnan(out[0]));
}

TEST_F(BuiltinHolisticTest, RankDescendingWithTies) {
  auto out = Eval("rank", {{10, 30, 20, 30}});
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(out[3], 1);  // competition ranking: ties share the top rank
}

TEST_F(BuiltinHolisticTest, RankSkipsNulls) {
  auto out = Eval("rank", {{10, kNullMeasure, 20}});
  EXPECT_EQ(out[0], 2);
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_EQ(out[2], 1);
}

TEST_F(BuiltinHolisticTest, PercentileRank) {
  auto out = Eval("percentileRank", {{10, 20, 30, 40}});
  EXPECT_DOUBLE_EQ(out[3], 0.25);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
}

TEST(FunctionRegistryTest, LookupIsCaseInsensitive) {
  FunctionRegistry registry = FunctionRegistry::Default();
  EXPECT_TRUE(registry.Find("MINMAXNORM").ok());
  EXPECT_TRUE(registry.Contains("Difference"));
  EXPECT_FALSE(registry.Find("nope").ok());
}

TEST(FunctionRegistryTest, DuplicateRegistrationFails) {
  FunctionRegistry registry = FunctionRegistry::Default();
  FunctionDef dup;
  dup.name = "Difference";
  dup.kind = FunctionKind::kCell;
  dup.arity = 2;
  dup.cell = [](std::span<const double>) { return 0.0; };
  EXPECT_EQ(registry.Register(std::move(dup)).code(),
            StatusCode::kAlreadyExists);
}

TEST(FunctionRegistryTest, UserFunctionsAreUsable) {
  FunctionRegistry registry = FunctionRegistry::Default();
  FunctionDef shortfall;
  shortfall.name = "shortfall";
  shortfall.kind = FunctionKind::kCell;
  shortfall.arity = 2;
  shortfall.cell = [](std::span<const double> a) {
    return a[0] < a[1] ? a[1] - a[0] : 0.0;
  };
  ASSERT_TRUE(registry.Register(std::move(shortfall)).ok());
  EXPECT_EQ((*registry.Find("shortfall"))->cell(
                std::vector<double>{3.0, 5.0}),
            2.0);
}

TEST(FunctionRegistryTest, NamesAreSorted) {
  FunctionRegistry registry = FunctionRegistry::Default();
  auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "percOfTotal"),
            names.end());
}

// --- Expressions -------------------------------------------------------------

class ExpressionTest : public ::testing::Test {
 protected:
  ExpressionTest() : registry_(FunctionRegistry::Default()) {
    hier_ = std::make_shared<Hierarchy>("H");
    hier_->AddLevel("k");
    for (const char* m : {"a", "b", "c"}) hier_->AddMember(0, m);
  }

  Cube MakeCube() {
    Cube cube({LevelRef{hier_, 0}}, {"m", "benchmark.m"});
    cube.AddRow({0}, {100, 150});
    cube.AddRow({1}, {90, 110});
    cube.AddRow({2}, {30, 20});
    return cube;
  }

  FunctionRegistry registry_;
  std::shared_ptr<Hierarchy> hier_;
};

TEST_F(ExpressionTest, ToStringRendersSurfaceSyntax) {
  FuncExpr expr = FuncExpr::Call(
      "minMaxNorm", {FuncExpr::Call("difference",
                                    {FuncExpr::Measure("storeSales"),
                                     FuncExpr::Number(1000)})});
  EXPECT_EQ(expr.ToString(), "minMaxNorm(difference(storeSales, 1000))");
}

TEST_F(ExpressionTest, EqualityIsStructural) {
  FuncExpr a = FuncExpr::Call("f", {FuncExpr::Number(1)});
  FuncExpr b = FuncExpr::Call("f", {FuncExpr::Number(1)});
  FuncExpr c = FuncExpr::Call("f", {FuncExpr::Number(2)});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST_F(ExpressionTest, BareMeasureRefAddsNothing) {
  Cube cube = MakeCube();
  auto name = ApplyExpression(FuncExpr::Measure("m"), registry_, &cube);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "m");
  EXPECT_EQ(cube.measure_count(), 2);
}

TEST_F(ExpressionTest, NestedCallDecomposesIntoTransformChain) {
  Cube cube = MakeCube();
  FuncExpr expr = FuncExpr::Call(
      "percOfTotal",
      {FuncExpr::Call("difference", {FuncExpr::Measure("m"),
                                     FuncExpr::Measure("benchmark.m")}),
       FuncExpr::Measure("m")});
  auto name = ApplyExpression(expr, registry_, &cube);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "percOfTotal");
  // The intermediate difference column exists (cube E of Example 4.3).
  auto diff = CellMap(cube, "difference");
  EXPECT_EQ(diff[K("a")], -50);
  auto pot = CellMap(cube, "percOfTotal");
  EXPECT_NEAR(pot[K("a")], -50.0 / 220.0, 1e-12);
}

TEST_F(ExpressionTest, NumberBecomesConstantColumn) {
  Cube cube = MakeCube();
  FuncExpr expr = FuncExpr::Call(
      "ratio", {FuncExpr::Measure("m"), FuncExpr::Number(1000)});
  ASSERT_TRUE(ApplyExpression(expr, registry_, &cube).ok());
  EXPECT_TRUE(cube.MeasureIndex("$1000").ok());
  auto ratio = CellMap(cube, "ratio");
  EXPECT_DOUBLE_EQ(ratio[K("a")], 0.1);
}

TEST_F(ExpressionTest, RepeatedFunctionsGetUniqueNames) {
  Cube cube = MakeCube();
  FuncExpr expr = FuncExpr::Call(
      "difference",
      {FuncExpr::Call("difference", {FuncExpr::Measure("m"),
                                     FuncExpr::Measure("benchmark.m")}),
       FuncExpr::Number(1)});
  auto name = ApplyExpression(expr, registry_, &cube);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "difference_2");
  EXPECT_TRUE(cube.MeasureIndex("difference").ok());
}

TEST_F(ExpressionTest, ConstantColumnsAreReused) {
  Cube cube = MakeCube();
  FuncExpr expr = FuncExpr::Call(
      "difference", {FuncExpr::Call("ratio", {FuncExpr::Measure("m"),
                                              FuncExpr::Number(10)}),
                     FuncExpr::Number(10)});
  ASSERT_TRUE(ApplyExpression(expr, registry_, &cube).ok());
  int constants = 0;
  for (int i = 0; i < cube.measure_count(); ++i) {
    if (cube.measure_name(i) == "$10") ++constants;
  }
  EXPECT_EQ(constants, 1);
}

TEST_F(ExpressionTest, ArityMismatchFails) {
  Cube cube = MakeCube();
  FuncExpr expr = FuncExpr::Call("difference", {FuncExpr::Measure("m")});
  EXPECT_FALSE(ApplyExpression(expr, registry_, &cube).ok());
}

TEST_F(ExpressionTest, UnknownFunctionFails) {
  Cube cube = MakeCube();
  FuncExpr expr = FuncExpr::Call("frobnicate", {FuncExpr::Measure("m")});
  EXPECT_EQ(ApplyExpression(expr, registry_, &cube).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExpressionTest, UnknownMeasureFails) {
  Cube cube = MakeCube();
  FuncExpr expr = FuncExpr::Measure("ghost");
  EXPECT_FALSE(ApplyExpression(expr, registry_, &cube).ok());
}

TEST_F(ExpressionTest, HolisticInsideCellComposition) {
  Cube cube = MakeCube();
  // minMaxNorm(difference(m, benchmark.m)): holistic over a cell transform.
  FuncExpr expr = FuncExpr::Call(
      "minMaxNorm",
      {FuncExpr::Call("difference", {FuncExpr::Measure("m"),
                                     FuncExpr::Measure("benchmark.m")})});
  ASSERT_TRUE(ApplyExpression(expr, registry_, &cube).ok());
  auto norm = CellMap(cube, "minMaxNorm");
  // difference values: -50, -20, 10 -> normalized 0, 0.5, 1.
  EXPECT_DOUBLE_EQ(norm[K("a")], 0.0);
  EXPECT_DOUBLE_EQ(norm[K("b")], 0.5);
  EXPECT_DOUBLE_EQ(norm[K("c")], 1.0);
}

}  // namespace
}  // namespace assess
