#include "test_util.h"

namespace assess::testutil {

namespace {

struct FactSpec {
  const char* date;
  const char* product;
  const char* store;
  double quantity;
  double sales;
};

// Fresh-fruit quantities reproduce Figure 1; milk sales give SmartMart the
// monthly series 10, 20, 30, 40, 45 (OLS forecast for July: 50) and
// PetitPrix 5, 10, 15, 20, 18 (forecast 25).
constexpr FactSpec kFacts[] = {
    {"1997-07-01", "Apple", "SmartMart", 60, 0},
    {"1997-07-02", "Apple", "SmartMart", 40, 0},
    {"1997-07-01", "Pear", "SmartMart", 90, 0},
    {"1997-07-01", "Lemon", "SmartMart", 30, 0},
    {"1997-07-01", "Apple", "PetitPrix", 150, 0},
    {"1997-07-02", "Pear", "PetitPrix", 110, 0},
    {"1997-07-01", "Lemon", "PetitPrix", 20, 0},
    {"1997-03-15", "milk", "SmartMart", 0, 10},
    {"1997-04-15", "milk", "SmartMart", 0, 20},
    {"1997-05-15", "milk", "SmartMart", 0, 30},
    {"1997-06-15", "milk", "SmartMart", 0, 40},
    {"1997-07-15", "milk", "SmartMart", 0, 45},
    {"1997-03-15", "milk", "PetitPrix", 0, 5},
    {"1997-04-15", "milk", "PetitPrix", 0, 10},
    {"1997-05-15", "milk", "PetitPrix", 0, 15},
    {"1997-06-15", "milk", "PetitPrix", 0, 20},
    {"1997-07-15", "milk", "PetitPrix", 0, 18},
};

struct ProductSpec {
  const char* name;
  const char* type;
};
constexpr ProductSpec kProducts[] = {
    {"Apple", "Fresh Fruit"},
    {"Pear", "Fresh Fruit"},
    {"Lemon", "Fresh Fruit"},
    {"milk", "Dairy"},
};

struct StoreSpec {
  const char* name;
  const char* country;
};
constexpr StoreSpec kStores[] = {
    {"SmartMart", "Italy"},
    {"PetitPrix", "France"},
};

constexpr const char* kDates[] = {
    "1997-03-15", "1997-04-15", "1997-05-15", "1997-06-15",
    "1997-07-01", "1997-07-02", "1997-07-15",
};

}  // namespace

MiniDb BuildMiniSales() {
  auto h_date = std::make_shared<Hierarchy>("Date");
  h_date->set_temporal(true);
  h_date->AddLevel("date");
  h_date->AddLevel("month");
  h_date->AddLevel("year");
  DimensionTable dates("date", h_date);
  for (const char* date : kDates) {
    std::string name(date);
    MemberId year = h_date->AddMember(2, name.substr(0, 4));
    MemberId month = h_date->AddMember(1, name.substr(0, 7));
    h_date->SetParent(1, month, year);
    MemberId day = h_date->AddMember(0, name);
    h_date->SetParent(0, day, month);
    dates.AddRow({day, month, year});
  }

  auto h_product = std::make_shared<Hierarchy>("Product");
  h_product->AddLevel("product");
  h_product->AddLevel("type");
  DimensionTable products("product", h_product);
  for (const ProductSpec& p : kProducts) {
    MemberId type = h_product->AddMember(1, p.type);
    MemberId product = h_product->AddMember(0, p.name);
    h_product->SetParent(0, product, type);
    products.AddRow({product, type});
  }

  auto h_store = std::make_shared<Hierarchy>("Store");
  h_store->AddLevel("store");
  h_store->AddLevel("country");
  DimensionTable stores("store", h_store);
  for (const StoreSpec& s : kStores) {
    MemberId country = h_store->AddMember(1, s.country);
    MemberId store = h_store->AddMember(0, s.name);
    h_store->SetParent(0, store, country);
    stores.AddRow({store, country});
  }

  // Country populations (exact round numbers for per-capita assertions).
  h_store->SetProperty(1, "population", "Italy", 60.0);
  h_store->SetProperty(1, "population", "France", 70.0);

  auto schema = std::make_shared<CubeSchema>("SALES");
  schema->AddHierarchy(h_date);
  schema->AddHierarchy(h_product);
  schema->AddHierarchy(h_store);
  schema->AddMeasure({"quantity", AggOp::kSum});
  schema->AddMeasure({"sales", AggOp::kSum});

  FactTable facts("SALES", 3, 2);
  for (const FactSpec& f : kFacts) {
    int32_t d = *h_date->MemberIdOf(0, f.date);
    int32_t p = *h_product->MemberIdOf(0, f.product);
    int32_t s = *h_store->MemberIdOf(0, f.store);
    facts.AddRow({d, p, s}, {f.quantity, f.sales});
  }

  MiniDb out;
  out.schema = schema;
  out.db = std::make_unique<StarDatabase>();
  std::vector<DimensionTable> dims = {dates, products, stores};
  auto bound =
      std::make_unique<BoundCube>(schema, std::move(dims), std::move(facts));
  Status st = bound->Validate();
  (void)st;
  Status reg = out.db->Register("SALES", std::move(bound));
  (void)reg;
  return out;
}

std::map<std::vector<std::string>, double> CellMap(
    const Cube& cube, const std::string& measure) {
  std::map<std::vector<std::string>, double> out;
  Result<int> idx = cube.MeasureIndex(measure);
  if (!idx.ok()) return out;
  for (int64_t r = 0; r < cube.NumRows(); ++r) {
    std::vector<std::string> coord;
    coord.reserve(cube.level_count());
    for (int i = 0; i < cube.level_count(); ++i) {
      coord.push_back(cube.CoordName(r, i));
    }
    out[coord] = cube.MeasureAt(r, *idx);
  }
  return out;
}

std::map<std::vector<std::string>, std::string> LabelMap(const Cube& cube) {
  std::map<std::vector<std::string>, std::string> out;
  for (int64_t r = 0; r < cube.NumRows(); ++r) {
    std::vector<std::string> coord;
    coord.reserve(cube.level_count());
    for (int i = 0; i < cube.level_count(); ++i) {
      coord.push_back(cube.CoordName(r, i));
    }
    out[coord] = cube.labels().empty() ? "" : cube.labels()[r];
  }
  return out;
}

}  // namespace assess::testutil
