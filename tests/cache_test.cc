// The semantic result cache: canonical fingerprinting, exact-hit identity
// with the uncached path, subsumption-aware reuse equivalence with cold
// scans, byte-budget eviction, and cross-session sharing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "assess/session.h"
#include "cache/cube_cache.h"
#include "cache/query_fingerprint.h"
#include "common/rng.h"
#include "ssb/sales_generator.h"
#include "storage/star_query_engine.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::CellMap;
using ::assess::testutil::K;

EngineOptions CachedOptions(size_t budget = size_t{16} << 20, int shards = 4) {
  EngineOptions options;
  options.threads = 1;
  options.cache.budget_bytes = budget;
  options.cache.shards = shards;
  return options;
}

// Bit-exact cube comparison: same axes, same row order, same coordinate and
// measure bits.
void ExpectBitIdentical(const Cube& a, const Cube& b) {
  ASSERT_EQ(a.level_count(), b.level_count());
  ASSERT_EQ(a.measure_count(), b.measure_count());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (int l = 0; l < a.level_count(); ++l) {
    EXPECT_EQ(a.level(l).name(), b.level(l).name());
    EXPECT_EQ(a.coord_column(l), b.coord_column(l));
  }
  for (int m = 0; m < a.measure_count(); ++m) {
    EXPECT_EQ(a.measure_name(m), b.measure_name(m));
    const auto& lhs = a.measure_column(m);
    const auto& rhs = b.measure_column(m);
    for (int64_t r = 0; r < a.NumRows(); ++r) {
      // memcmp-style equality (covers NaN), not FP tolerance.
      EXPECT_EQ(std::isnan(lhs[r]), std::isnan(rhs[r]));
      if (!std::isnan(lhs[r])) {
        EXPECT_EQ(lhs[r], rhs[r]);
      }
    }
  }
}

// As in parallel_engine_test.cc: aggregates re-reduced in a different order
// may differ in the last ulp.
void ExpectCellsNear(const Cube& expected, const Cube& actual,
                     const std::string& measure) {
  auto lhs = CellMap(expected, measure);
  auto rhs = CellMap(actual, measure);
  ASSERT_EQ(lhs.size(), rhs.size()) << measure;
  for (const auto& [coord, value] : lhs) {
    auto it = rhs.find(coord);
    ASSERT_NE(it, rhs.end()) << measure;
    EXPECT_NEAR(value, it->second, 1e-9 * (1.0 + std::fabs(value)))
        << measure;
  }
}

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : mini_(testutil::BuildMiniSales()) {}

  CubeQuery Query(const std::vector<std::string>& by,
                  std::vector<Predicate> preds,
                  const std::vector<std::string>& measures) {
    auto q = CubeQuery::Make(*mini_.schema, "SALES", by, std::move(preds),
                             measures);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  testutil::MiniDb mini_;
};

// --- Fingerprinting -------------------------------------------------------

TEST_F(CacheTest, EquivalentQueriesShareFingerprint) {
  CubeQuery a = Query({"product", "country"},
                      {{2, 1, PredicateOp::kIn, {"Italy", "France"}},
                       {1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}},
                      {"quantity", "sales"});
  // Different surface form: swapped predicate order, shuffled/duplicated IN
  // members, swapped measure order, an alias.
  CubeQuery b = Query({"product", "country"},
                      {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
                       {2, 1, PredicateOp::kIn, {"France", "Italy", "France"}}},
                      {"sales", "quantity"});
  b.alias = "benchmark";
  EXPECT_EQ(FingerprintKey(CanonicalizeQuery(a)),
            FingerprintKey(CanonicalizeQuery(b)));
}

TEST_F(CacheTest, SingletonInCollapsesToEquals) {
  CubeQuery eq = Query({"product"}, {{2, 1, PredicateOp::kEquals, {"Italy"}}},
                       {"quantity"});
  CubeQuery in = Query({"product"}, {{2, 1, PredicateOp::kIn, {"Italy"}}},
                       {"quantity"});
  EXPECT_EQ(FingerprintKey(CanonicalizeQuery(eq)),
            FingerprintKey(CanonicalizeQuery(in)));
}

TEST_F(CacheTest, DistinctQueriesGetDistinctFingerprints) {
  CubeQuery base = Query({"product"}, {}, {"quantity"});
  CubeQuery other_group = Query({"type"}, {}, {"quantity"});
  CubeQuery other_measure = Query({"product"}, {}, {"sales"});
  CubeQuery with_pred =
      Query({"product"}, {{2, 1, PredicateOp::kEquals, {"Italy"}}},
            {"quantity"});
  // BETWEEN bounds are positional, not a sortable member set.
  CubeQuery between_ab = Query(
      {"product"}, {{0, 1, PredicateOp::kBetween, {"1997-01", "1997-05"}}},
      {"quantity"});
  CubeQuery between_ba = Query(
      {"product"}, {{0, 1, PredicateOp::kBetween, {"1997-05", "1997-01"}}},
      {"quantity"});
  const std::string key = FingerprintKey(CanonicalizeQuery(base));
  EXPECT_NE(key, FingerprintKey(CanonicalizeQuery(other_group)));
  EXPECT_NE(key, FingerprintKey(CanonicalizeQuery(other_measure)));
  EXPECT_NE(key, FingerprintKey(CanonicalizeQuery(with_pred)));
  EXPECT_NE(FingerprintKey(CanonicalizeQuery(between_ab)),
            FingerprintKey(CanonicalizeQuery(between_ba)));
}

// --- Exact hits -----------------------------------------------------------

TEST_F(CacheTest, ExactHitIsBitIdenticalToUncachedPath) {
  StarQueryEngine uncached(mini_.db.get(), /*use_views=*/true, 1);
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  CubeQuery q = Query({"product", "country"},
                      {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}},
                      {"quantity", "sales"});
  Cube cold = *cached.Execute(q);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kMiss);
  Cube warm = *cached.Execute(q);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kExactHit);
  ExpectBitIdentical(cold, warm);
  ExpectBitIdentical(*uncached.Execute(q), warm);
  EXPECT_EQ(cached.cache_stats().exact_hits, 1u);
}

TEST_F(CacheTest, ExactHitServesAnyMeasureOrder) {
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  CubeQuery forward = Query({"country"}, {}, {"quantity", "sales"});
  CubeQuery reversed = Query({"country"}, {}, {"sales", "quantity"});
  Cube first = *cached.Execute(forward);
  Cube second = *cached.Execute(reversed);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kExactHit);
  ASSERT_EQ(second.measure_name(0), "sales");
  ASSERT_EQ(second.measure_name(1), "quantity");
  EXPECT_EQ(CellMap(first, "quantity"), CellMap(second, "quantity"));
  EXPECT_EQ(CellMap(first, "sales"), CellMap(second, "sales"));
}

TEST_F(CacheTest, AvgMeasuresAreExactHitEligible) {
  // Build a tiny cube with an avg measure: avg disqualifies re-aggregation
  // but not identity reuse.
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  DimensionTable dim("k", hier);
  dim.AddRow({hier->AddMember(0, "g1")});
  dim.AddRow({hier->AddMember(0, "g2")});
  auto schema = std::make_shared<CubeSchema>("T");
  schema->AddHierarchy(hier);
  schema->AddMeasure({"a", AggOp::kAvg});
  FactTable facts("T", 1, 1);
  facts.AddRow({0}, {2.0});
  facts.AddRow({0}, {4.0});
  facts.AddRow({1}, {10.0});
  StarDatabase db;
  ASSERT_TRUE(db.Register("T", std::make_unique<BoundCube>(
                                   schema, std::vector<DimensionTable>{dim},
                                   std::move(facts)))
                  .ok());
  StarQueryEngine cached(&db, CachedOptions());
  CubeQuery q = *CubeQuery::Make(*schema, "T", {"k"}, {}, {"a"});
  Cube cold = *cached.Execute(q);
  Cube warm = *cached.Execute(q);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kExactHit);
  ExpectBitIdentical(cold, warm);

  // But the fully aggregated roll-up of an avg must NOT reuse the cached
  // per-group averages (avg of avgs is wrong): it recomputes.
  CubeQuery all = *CubeQuery::Make(*schema, "T", {}, {}, {"a"});
  Cube total = *cached.Execute(all);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kMiss);
  EXPECT_NEAR(total.MeasureAt(0, 0), (2.0 + 4.0 + 10.0) / 3, 1e-12);
}

// --- Subsumption reuse ----------------------------------------------------

TEST_F(CacheTest, CoarserGroupByReusesFinerEntry) {
  StarQueryEngine uncached(mini_.db.get(), /*use_views=*/true, 1);
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  CubeQuery fine = Query({"product", "country"}, {}, {"quantity", "sales"});
  CubeQuery coarse = Query({"type"}, {}, {"quantity"});
  (void)*cached.Execute(fine);
  Cube warm = *cached.Execute(coarse);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kSubsumptionHit);
  ExpectCellsNear(*uncached.Execute(coarse), warm, "quantity");
  EXPECT_EQ(cached.cache_stats().subsumption_hits, 1u);
}

TEST_F(CacheTest, ExtraPredicateEvaluatedOnCachedCells) {
  StarQueryEngine uncached(mini_.db.get(), /*use_views=*/true, 1);
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  CubeQuery fine = Query({"product", "country"}, {}, {"quantity"});
  CubeQuery sliced = Query({"product"},
                           {{2, 1, PredicateOp::kEquals, {"Italy"}}},
                           {"quantity"});
  (void)*cached.Execute(fine);
  Cube warm = *cached.Execute(sliced);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kSubsumptionHit);
  ExpectCellsNear(*uncached.Execute(sliced), warm, "quantity");
  // Exact quantities from the paper's running example survive the reuse.
  auto cells = CellMap(warm, "quantity");
  EXPECT_EQ(cells[K("Apple")], 100);
  EXPECT_EQ(cells[K("Pear")], 90);
  EXPECT_EQ(cells[K("Lemon")], 30);
}

TEST_F(CacheTest, PredicatedEntryAnswersMatchingSlice) {
  StarQueryEngine uncached(mini_.db.get(), /*use_views=*/true, 1);
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  // Entry carries a predicate; a coarser query with the same predicate plus
  // an extra one must reuse it (entry preds ⊆ request preds).
  CubeQuery fine = Query({"product", "country"},
                         {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}},
                         {"quantity"});
  CubeQuery coarse = Query({"country"},
                           {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}},
                            {2, 1, PredicateOp::kIn, {"Italy", "France"}}},
                           {"quantity"});
  (void)*cached.Execute(fine);
  Cube warm = *cached.Execute(coarse);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kSubsumptionHit);
  ExpectCellsNear(*uncached.Execute(coarse), warm, "quantity");
}

TEST_F(CacheTest, DisjointPredicateDoesNotReuse) {
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  CubeQuery italy = Query({"product", "country"},
                          {{2, 1, PredicateOp::kEquals, {"Italy"}}},
                          {"quantity"});
  CubeQuery all = Query({"product"}, {}, {"quantity"});
  (void)*cached.Execute(italy);
  // The unpredicated query needs rows the Italy slice does not contain.
  (void)*cached.Execute(all);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kMiss);
}

TEST_F(CacheTest, PredicateFinerThanEntryGroupByDoesNotReuse) {
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  // Entry at month granularity cannot evaluate a date-level slice.
  CubeQuery by_month = Query({"month"}, {}, {"quantity"});
  CubeQuery by_year_date_slice =
      Query({"year"}, {{0, 0, PredicateOp::kEquals, {"1997-07-01"}}},
            {"quantity"});
  (void)*cached.Execute(by_month);
  (void)*cached.Execute(by_year_date_slice);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kMiss);
}

TEST_F(CacheTest, SubsumptionPrefersSmallestQualifyingEntry) {
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  CubeQuery finest = Query({"product", "country"}, {}, {"quantity"});
  CubeQuery mid = Query({"type", "country"}, {}, {"quantity"});
  CubeQuery coarse = Query({"type"}, {}, {"quantity"});
  Cube finest_cube = *cached.Execute(finest);
  Cube mid_cube = *cached.Execute(mid);
  ASSERT_LT(mid_cube.NumRows(), finest_cube.NumRows());
  (void)*cached.Execute(coarse);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kSubsumptionHit);
  // Both entries qualify; the matcher must pick the mid-size one. Observable
  // through EntryAnswersQuery plus the row counts asserted above.
  auto want = CanonicalizeQuery(coarse);
  EXPECT_TRUE(EntryAnswersQuery(*mini_.schema, want, CanonicalizeQuery(mid)));
  EXPECT_TRUE(
      EntryAnswersQuery(*mini_.schema, want, CanonicalizeQuery(finest)));
}

TEST_F(CacheTest, SubsumptionResultSeedsExactEntry) {
  StarQueryEngine cached(mini_.db.get(), CachedOptions());
  CubeQuery fine = Query({"product", "country"}, {}, {"quantity"});
  CubeQuery coarse = Query({"type"}, {}, {"quantity"});
  (void)*cached.Execute(fine);
  Cube rolled = *cached.Execute(coarse);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kSubsumptionHit);
  Cube again = *cached.Execute(coarse);
  EXPECT_EQ(cached.last_cache_outcome(), CacheOutcome::kExactHit);
  ExpectBitIdentical(rolled, again);
}

// Larger, randomized equivalence: every warm answer (exact or subsumed)
// matches a cold engine on generated SALES data.
TEST_F(CacheTest, WarmAnswersMatchColdScansOnGeneratedData) {
  SalesConfig config;
  config.facts = 20000;
  auto db = std::move(BuildSalesDatabase(config)).value();
  const BoundCube* sales = *db->Find("SALES");
  StarQueryEngine cold(db.get(), /*use_views=*/true, 1);
  StarQueryEngine warm(db.get(), CachedOptions());
  // Generated SALES schema: date(0), customer(1), product(2), store(3);
  // country is level 2 of the store hierarchy.
  auto make = [&](const std::vector<std::string>& by,
                  std::vector<Predicate> preds) {
    return *CubeQuery::Make(sales->schema(), "SALES", by, std::move(preds),
                            {"quantity", "storeSales"});
  };
  std::vector<CubeQuery> queries = {
      make({"product", "country", "month"}, {}),
      make({"product", "country"}, {}),
      make({"type", "country"}, {}),
      make({"type"}, {{3, 2, PredicateOp::kEquals, {"Italy"}}}),
      make({"country"}, {{2, 1, PredicateOp::kEquals, {"Fresh Fruit"}}}),
      make({"year", "type"}, {}),
      make({"month", "country"},
           {{0, 2, PredicateOp::kIn, {"1996", "1997"}}}),
      make({}, {}),
  };
  // Two passes: the second is fully warm; both must match the cold engine.
  for (int pass = 0; pass < 2; ++pass) {
    for (const CubeQuery& q : queries) {
      Cube expected = *cold.Execute(q);
      Cube actual = *warm.Execute(q);
      ExpectCellsNear(expected, actual, "quantity");
      ExpectCellsNear(expected, actual, "storeSales");
    }
  }
  CacheStats stats = warm.cache_stats();
  EXPECT_EQ(stats.lookups, 16u);
  EXPECT_GT(stats.subsumption_hits, 0u);
  EXPECT_GT(stats.exact_hits, 0u);
  EXPECT_EQ(stats.lookups,
            stats.exact_hits + stats.subsumption_hits + stats.misses);
}

// --- Accounting and eviction ----------------------------------------------

TEST_F(CacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  CacheOptions options;
  options.shards = 1;
  // Measure one entry's footprint, then budget for about three of them.
  CubeQuery q = Query({"product", "country"}, {}, {"quantity"});
  StarQueryEngine engine(mini_.db.get(), /*use_views=*/true, 1);
  Cube cube = *engine.Execute(q);
  size_t entry_bytes = EstimateCubeBytes(cube) + 64;
  options.budget_bytes = 3 * (entry_bytes + sizeof(void*) * 8);
  CubeResultCache cache(options);

  for (int i = 0; i < 8; ++i) {
    cache.Insert("key" + std::to_string(i), CanonicalizeQuery(q), cube);
  }
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 8u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_resident, options.budget_bytes);
  EXPECT_EQ(stats.entries + stats.evictions, stats.insertions);
  // The survivors are the most recently inserted keys.
  EXPECT_TRUE(cache.FindExact("key7").has_value());
  EXPECT_FALSE(cache.FindExact("key0").has_value());
}

TEST_F(CacheTest, OversizedResultsAreNotCached) {
  CacheOptions options;
  options.shards = 1;
  options.budget_bytes = 16;  // smaller than any real result
  CubeResultCache cache(options);
  CubeQuery q = Query({"product"}, {}, {"quantity"});
  StarQueryEngine engine(mini_.db.get(), /*use_views=*/true, 1);
  cache.Insert(FingerprintKey(CanonicalizeQuery(q)), CanonicalizeQuery(q),
               *engine.Execute(q));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST_F(CacheTest, EngineHonorsBudgetEndToEnd) {
  // A deliberately tiny budget: the engine keeps running correctly while
  // the cache evicts behind it.
  StarQueryEngine cached(mini_.db.get(), CachedOptions(2048, 1));
  StarQueryEngine uncached(mini_.db.get(), /*use_views=*/true, 1);
  std::vector<CubeQuery> queries = {
      Query({"product", "country"}, {}, {"quantity", "sales"}),
      Query({"month", "product"}, {}, {"quantity"}),
      Query({"date", "store"}, {}, {"sales"}),
      Query({"month", "store", "product"}, {}, {"quantity", "sales"}),
  };
  for (int pass = 0; pass < 3; ++pass) {
    for (const CubeQuery& q : queries) {
      ExpectCellsNear(*uncached.Execute(q), *cached.Execute(q), "quantity");
    }
  }
  CacheStats stats = cached.cache_stats();
  EXPECT_LE(stats.bytes_resident, cached.result_cache()->budget_bytes());
}

// --- Sharing and concurrency ----------------------------------------------

TEST_F(CacheTest, SharedCacheServesASecondSession) {
  auto shared = std::make_shared<CubeResultCache>(CacheOptions{});
  ExecutorOptions options;
  options.threads = 1;
  options.shared_cache = shared;
  AssessSession first(mini_.db.get(), options);
  AssessSession second(mini_.db.get(), options);
  const char* text =
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using difference(quantity, benchmark.quantity) labels quartiles";
  auto cold = first.Query(text);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  uint64_t hits_before = shared->stats().hits();
  auto warm = second.Query(text);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GT(shared->stats().hits(), hits_before);
  EXPECT_EQ(CellMap(cold->cube, cold->comparison_measure),
            CellMap(warm->cube, warm->comparison_measure));
}

TEST_F(CacheTest, ConcurrentSessionsOnOneCacheAgree) {
  auto shared = std::make_shared<CubeResultCache>(CacheOptions{});
  StarQueryEngine baseline(mini_.db.get(), /*use_views=*/true, 1);
  std::vector<CubeQuery> queries = {
      Query({"product", "country"}, {}, {"quantity"}),
      Query({"type"}, {}, {"quantity"}),
      Query({"country"}, {{1, 1, PredicateOp::kEquals, {"Fresh Fruit"}}},
            {"quantity"}),
      Query({"month"}, {}, {"quantity"}),
  };
  std::vector<std::map<std::vector<std::string>, double>> expected;
  for (const CubeQuery& q : queries) {
    expected.push_back(CellMap(*baseline.Execute(q), "quantity"));
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      EngineOptions options;
      options.threads = 1;
      options.shared_cache = shared;
      StarQueryEngine engine(mini_.db.get(), options);
      Rng rng(t + 1);
      for (int i = 0; i < 200; ++i) {
        size_t pick = rng.Uniform(static_cast<int>(queries.size()));
        auto result = engine.Execute(queries[pick]);
        if (!result.ok() ||
            CellMap(*result, "quantity") != expected[pick]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(shared->stats().hits(), 0u);
}

}  // namespace
}  // namespace assess
