// The write-ahead log in isolation: payload codec round trips, segment
// framing, the torn-tail / mid-log corruption discrimination of ScanWal,
// LSN continuity enforcement, segment rotation and truncation, group-commit
// fsync coalescing, and the wal.append / wal.fsync failpoints (a failed
// append leaves the log healthy; a failed fsync poisons it).

#include "wal/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace assess {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    dir_ = fs::temp_directory_path() /
           ("assess_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  ~WalTest() override {
    FailpointRegistry::Instance().DisarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  WalRecordData Record(const std::string& cube, uint64_t epoch,
                       uint32_t rows) {
    WalRecordData rec;
    rec.epoch = epoch;
    rec.cube = cube;
    rec.row_count = rows;
    rec.header = "date,product,store,quantity,sales";
    rec.text = "1997-07-02,Apple,SmartMart,5,7";
    return rec;
  }

  /// Appends `n` records to a fresh log in `dir_` and closes it.
  void WriteLog(int n, FsyncMode mode = FsyncMode::kAlways) {
    WalOptions options;
    options.fsync_mode = mode;
    auto wal = WriteAheadLog::Open(dir_.string(), options, /*next_lsn=*/1);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 0; i < n; ++i) {
      auto lsn = (*wal)->Append(Record("SALES", i + 1, 2));
      ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
    }
  }

  /// The single segment file in `dir_` (fails the test when != 1).
  fs::path OnlySegment() {
    std::vector<fs::path> segments;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      segments.push_back(entry.path());
    }
    EXPECT_EQ(segments.size(), 1u);
    return segments.empty() ? fs::path() : segments[0];
  }

  fs::path dir_;
};

TEST(WalPayloadTest, RoundTripsEveryField) {
  WalRecordData rec;
  rec.lsn = 42;
  rec.kind = WalRecordKind::kIngestBatch;
  rec.epoch = 7;
  rec.format = IngestFormat::kJsonl;
  rec.flags = kWalFlagAutoInsert;
  rec.cube = "SALES";
  rec.row_count = 1234;
  rec.header = "";
  rec.text = "{\"product\": \"Apple\"}\n{\"product\": \"Pear\"}";

  auto decoded = DecodeWalPayload(EncodeWalPayload(rec));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->lsn, rec.lsn);
  EXPECT_EQ(decoded->kind, rec.kind);
  EXPECT_EQ(decoded->epoch, rec.epoch);
  EXPECT_EQ(decoded->format, rec.format);
  EXPECT_EQ(decoded->flags, rec.flags);
  EXPECT_EQ(decoded->cube, rec.cube);
  EXPECT_EQ(decoded->row_count, rec.row_count);
  EXPECT_EQ(decoded->header, rec.header);
  EXPECT_EQ(decoded->text, rec.text);
}

TEST(WalPayloadTest, DecodeRejectsStructuralDamage) {
  WalRecordData rec;
  rec.lsn = 1;
  rec.cube = "SALES";
  rec.header = "h";
  rec.text = "t";
  std::string payload = EncodeWalPayload(rec);

  // Truncation anywhere is typed corruption, never a crash.
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeWalPayload(std::string_view(payload.data(), len));
    ASSERT_FALSE(decoded.ok()) << "decoded a " << len << "-byte prefix";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruptWal);
  }
  // Trailing garbage too.
  auto extra = DecodeWalPayload(payload + "x");
  EXPECT_EQ(extra.status().code(), StatusCode::kCorruptWal);
  // Unknown kind byte (offset 8, after the LSN).
  std::string bad_kind = payload;
  bad_kind[8] = 99;
  EXPECT_EQ(DecodeWalPayload(bad_kind).status().code(),
            StatusCode::kCorruptWal);
}

TEST(WalPayloadTest, FsyncModeParsesItsOwnRendering) {
  for (FsyncMode mode :
       {FsyncMode::kNone, FsyncMode::kAlways, FsyncMode::kGroup}) {
    auto parsed = ParseFsyncMode(FsyncModeToString(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(ParseFsyncMode("always").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WalTest, AppendThenScanRoundTrips) {
  WriteLog(5);
  std::vector<WalRecordData> replayed;
  WalScanReport report;
  Status st = ScanWal(
      dir_.string(), /*after_lsn=*/0, /*repair=*/false,
      [&](const WalRecordData& rec) {
        replayed.push_back(rec);
        return Status::OK();
      },
      &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.records, 5u);
  EXPECT_EQ(report.replayed, 5u);
  EXPECT_EQ(report.last_lsn, 5u);
  EXPECT_FALSE(report.tail_truncated);
  ASSERT_EQ(replayed.size(), 5u);
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].lsn, i + 1);
    EXPECT_EQ(replayed[i].epoch, i + 1);
    EXPECT_EQ(replayed[i].cube, "SALES");
    EXPECT_EQ(replayed[i].row_count, 2u);
  }
}

TEST_F(WalTest, ScanSkipsRecordsTheCheckpointCovers) {
  WriteLog(5);
  std::vector<uint64_t> lsns;
  WalScanReport report;
  Status st = ScanWal(
      dir_.string(), /*after_lsn=*/3, /*repair=*/false,
      [&](const WalRecordData& rec) {
        lsns.push_back(rec.lsn);
        return Status::OK();
      },
      &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.records, 5u);
  EXPECT_EQ(report.replayed, 2u);
  EXPECT_EQ(lsns, (std::vector<uint64_t>{4, 5}));
}

TEST_F(WalTest, ScanOfMissingOrEmptyDirIsCleanlyEmpty) {
  WalScanReport report;
  ASSERT_TRUE(ScanWal((dir_ / "nowhere").string(), 0, false, nullptr,
                      &report)
                  .ok());
  EXPECT_EQ(report.records, 0u);
}

TEST_F(WalTest, TornTailIsTruncatedWithANote) {
  WriteLog(3);
  fs::path segment = OnlySegment();
  const auto intact_size = fs::file_size(segment);
  // Simulate a crash mid-append: a partial frame at the end of the file
  // (write() with an explicit length — the junk contains NUL bytes).
  std::ofstream out(segment, std::ios::binary | std::ios::app);
  const char junk[] = {'\x20', '\x00', '\x00', '\x00', '\xde', '\xad'};
  out.write(junk, sizeof(junk));
  out.close();

  std::vector<uint64_t> lsns;
  WalScanReport report;
  Status st = ScanWal(
      dir_.string(), 0, /*repair=*/true,
      [&](const WalRecordData& rec) {
        lsns.push_back(rec.lsn);
        return Status::OK();
      },
      &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(lsns, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_GT(report.truncated_bytes, 0u);
  EXPECT_NE(report.tail_note.find("torn WAL tail"), std::string::npos);
  // repair=true physically removed the torn bytes; a second scan is clean.
  EXPECT_EQ(fs::file_size(segment), intact_size);
  WalScanReport again;
  ASSERT_TRUE(ScanWal(dir_.string(), 0, false, nullptr, &again).ok());
  EXPECT_FALSE(again.tail_truncated);
  EXPECT_EQ(again.records, 3u);
}

TEST_F(WalTest, BitFlipInFinalRecordIsATornTail) {
  WriteLog(3);
  fs::path segment = OnlySegment();
  // Flip the very last byte: the damaged record ends exactly at EOF, which
  // is indistinguishable from sectors landing out of order mid-crash.
  std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-1, std::ios::end);
  f.put('\xFF');
  f.close();

  std::vector<uint64_t> lsns;
  WalScanReport report;
  Status st = ScanWal(
      dir_.string(), 0, /*repair=*/false,
      [&](const WalRecordData& rec) {
        lsns.push_back(rec.lsn);
        return Status::OK();
      },
      &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(lsns, (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(report.tail_truncated);
}

TEST_F(WalTest, BitFlipMidLogIsTypedCorruptionNotAGuess) {
  WriteLog(3);
  fs::path segment = OnlySegment();
  // Damage the first record's payload: valid frames follow it, so this is
  // not a torn tail and recovery must refuse rather than drop the suffix.
  std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(16 + 8 + 4, std::ios::beg);  // segment header + frame header + 4
  f.put('\xFF');
  f.close();

  WalScanReport report;
  Status st = ScanWal(dir_.string(), 0, /*repair=*/true, nullptr, &report);
  EXPECT_EQ(st.code(), StatusCode::kCorruptWal);
  EXPECT_NE(st.message().find("valid data following"), std::string::npos);
  // repair must not have touched anything it could not explain.
  EXPECT_FALSE(report.tail_truncated);
}

TEST_F(WalTest, DamageInANonFinalSegmentIsTypedCorruption) {
  WalOptions options;
  options.fsync_mode = FsyncMode::kAlways;
  auto wal = WriteAheadLog::Open(dir_.string(), options, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 1, 2)).ok());
  ASSERT_TRUE((*wal)->StartNewSegment().ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 2, 2)).ok());
  wal->reset();

  // Chop the tail off the *first* segment: a sealed segment can only be
  // short if the disk lost data, never from a torn append.
  fs::path first;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (first.empty() || entry.path() < first) first = entry.path();
  }
  fs::resize_file(first, fs::file_size(first) - 3);

  WalScanReport report;
  Status st = ScanWal(dir_.string(), 0, /*repair=*/true, nullptr, &report);
  EXPECT_EQ(st.code(), StatusCode::kCorruptWal);
  EXPECT_NE(st.message().find("non-final segment"), std::string::npos);
}

TEST_F(WalTest, MissingOldestSegmentIsTypedCorruption) {
  WalOptions options;
  options.fsync_mode = FsyncMode::kAlways;
  auto wal = WriteAheadLog::Open(dir_.string(), options, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 1, 2)).ok());
  ASSERT_TRUE((*wal)->StartNewSegment().ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 2, 2)).ok());
  wal->reset();

  // Delete the oldest segment: LSN 1 is gone but the checkpoint only
  // covers LSN 0, so the scan must refuse to silently skip a record.
  fs::path first;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (first.empty() || entry.path() < first) first = entry.path();
  }
  fs::remove(first);

  WalScanReport report;
  Status st = ScanWal(dir_.string(), 0, false, nullptr, &report);
  EXPECT_EQ(st.code(), StatusCode::kCorruptWal);
  EXPECT_NE(st.message().find("missing records"), std::string::npos);

  // With a checkpoint covering the deleted record the same layout is fine.
  WalScanReport covered;
  Status ok = ScanWal(dir_.string(), /*after_lsn=*/1, false, nullptr,
                      &covered);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ(covered.records, 1u);
}

TEST_F(WalTest, DeleteSegmentsBelowKeepsCoveringSegments) {
  WalOptions options;
  options.fsync_mode = FsyncMode::kAlways;
  auto wal = WriteAheadLog::Open(dir_.string(), options, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 1, 2)).ok());  // LSN 1
  ASSERT_TRUE((*wal)->StartNewSegment().ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 2, 2)).ok());  // LSN 2
  ASSERT_TRUE((*wal)->StartNewSegment().ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 3, 2)).ok());  // LSN 3

  // A checkpoint at LSN 1 covers only the first segment.
  ASSERT_TRUE((*wal)->DeleteSegmentsBelow(2).ok());
  WalScanReport report;
  ASSERT_TRUE(ScanWal(dir_.string(), 1, false, nullptr, &report).ok());
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.last_lsn, 3u);

  // A checkpoint at LSN 3 covers everything sealed.
  ASSERT_TRUE((*wal)->DeleteSegmentsBelow(4).ok());
  WalScanReport after;
  ASSERT_TRUE(ScanWal(dir_.string(), 3, false, nullptr, &after).ok());
  EXPECT_EQ(after.replayed, 0u);
}

TEST_F(WalTest, GroupCommitCoalescesFsyncs) {
  WalOptions options;
  options.fsync_mode = FsyncMode::kGroup;
  auto wal = WriteAheadLog::Open(dir_.string(), options, 1);
  ASSERT_TRUE(wal.ok());

  constexpr int kThreads = 8;
  constexpr int kAppendsEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppendsEach; ++i) {
        auto lsn = (*wal)->Append(
            Record("CUBE" + std::to_string(t), i + 1, 1));
        ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  WalStats stats = (*wal)->stats();
  EXPECT_EQ(stats.appends, static_cast<uint64_t>(kThreads * kAppendsEach));
  // The whole point of group commit: one leader's fsync covers many
  // followers, so fsyncs land well below one per append. (A scheduler that
  // never overlapped two appends would make them equal — with 8 threads
  // hammering the same log that does not happen.)
  EXPECT_LT(stats.fsyncs, stats.appends);

  // Everything is durable and contiguous.
  WalScanReport report;
  ASSERT_TRUE(ScanWal(dir_.string(), 0, false, nullptr, &report).ok());
  EXPECT_EQ(report.records, static_cast<uint64_t>(kThreads * kAppendsEach));
}

TEST_F(WalTest, AppendFailpointLeavesTheLogHealthy) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  WalOptions options;
  options.fsync_mode = FsyncMode::kAlways;
  auto wal = WriteAheadLog::Open(dir_.string(), options, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Record("SALES", 1, 2)).ok());

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmFromString("wal.append=error(unavailable):budget=1")
                  .ok());
  auto failed = (*wal)->Append(Record("SALES", 2, 2));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  FailpointRegistry::Instance().DisarmAll();

  // The failed append wrote nothing: the next one takes its LSN and the
  // log scans clean with dense LSNs.
  auto next = (*wal)->Append(Record("SALES", 2, 2));
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(*next, 2u);
  wal->reset();
  WalScanReport report;
  ASSERT_TRUE(ScanWal(dir_.string(), 0, false, nullptr, &report).ok());
  EXPECT_EQ(report.records, 2u);
  EXPECT_FALSE(report.tail_truncated);
}

TEST_F(WalTest, FsyncFailpointPoisonsTheLog) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  WalOptions options;
  options.fsync_mode = FsyncMode::kAlways;
  auto wal = WriteAheadLog::Open(dir_.string(), options, 1);
  ASSERT_TRUE(wal.ok());

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmFromString("wal.fsync=error(internal):budget=1")
                  .ok());
  auto failed = (*wal)->Append(Record("SALES", 1, 2));
  ASSERT_FALSE(failed.ok());
  FailpointRegistry::Instance().DisarmAll();

  // Bytes of unknown durability precede any further append, so the log
  // refuses them all until a restart re-establishes a trusted prefix.
  auto refused = (*wal)->Append(Record("SALES", 2, 2));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("restart to recover"),
            std::string::npos);
  EXPECT_FALSE((*wal)->Sync().ok());
}

}  // namespace
}  // namespace assess
