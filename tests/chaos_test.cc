// Deterministic chaos harness for the assessd stack: runs the loopback
// server under seeded fault schedules — injected errors, latency, corrupted
// frames, degraded caches — and asserts the only observable outcomes are a
// bit-identical result or a typed error. Never a hang, a crash, or a wrong
// answer.
//
// Schedules are seeded (kSchedules of them), so a failure reproduces by
// seed. Every test disarms the global failpoint registry on entry and exit;
// the whole file skips itself when built with ASSESS_FAILPOINTS=OFF except
// the tests that only need deadlines and retry (no injection).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "assess/session.h"
#include "assess/wire_format.h"
#include "client/assess_client.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "server/assessd.h"
#include "server/protocol.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

constexpr int kSchedules = 200;

const char* kStatements[] = {
    "with SALES for country = 'Italy' by product, country assess quantity "
    "against country = 'France' labels quartiles",
    "with SALES by month assess sales against 10 labels quartiles",
    "with SALES for month = '1997-07' by month, store assess sales "
    "against past 2 labels quartiles",
    "with SALES by month assess sales labels quartiles",
};
constexpr size_t kStatementCount =
    sizeof(kStatements) / sizeof(kStatements[0]);

/// Everything except timings must match bit-for-bit; timings are measured.
void ExpectSameComputation(const AssessResult& expected,
                           const AssessResult& actual,
                           const std::string& context) {
  EXPECT_EQ(expected.plan, actual.plan) << context;
  EXPECT_EQ(expected.sql, actual.sql) << context;
  const Cube& lhs = expected.cube;
  const Cube& rhs = actual.cube;
  ASSERT_EQ(lhs.NumRows(), rhs.NumRows()) << context;
  ASSERT_EQ(lhs.level_count(), rhs.level_count()) << context;
  ASSERT_EQ(lhs.measure_count(), rhs.measure_count()) << context;
  for (int l = 0; l < lhs.level_count(); ++l) {
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      ASSERT_EQ(lhs.CoordName(r, l), rhs.CoordName(r, l))
          << context << " row " << r << " level " << l;
    }
  }
  for (int m = 0; m < lhs.measure_count(); ++m) {
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      double x = lhs.MeasureAt(r, m), y = rhs.MeasureAt(r, m);
      uint64_t xb, yb;
      std::memcpy(&xb, &x, sizeof(x));
      std::memcpy(&yb, &y, sizeof(y));
      ASSERT_EQ(xb, yb) << context << " row " << r << " measure " << m;
    }
  }
  EXPECT_EQ(lhs.labels(), rhs.labels()) << context;
}

/// The statuses a client under chaos may legitimately surface: transient
/// transport conditions (after retries ran out) and deadline expiries.
/// Anything else — especially kInternal or an OK-but-different result — is
/// a harness failure.
bool IsAcceptableChaosError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kTimeout:
    case StatusCode::kCorruptFrame:
      return true;
    default:
      return false;
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest() : mini_(BuildMiniSales()) {
    FailpointRegistry::Instance().DisarmAll();
    AssessSession session(mini_.db.get());
    for (const char* statement : kStatements) {
      auto result = session.Query(statement);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      expected_.push_back(std::move(result).value());
    }
  }
  ~ChaosTest() override { FailpointRegistry::Instance().DisarmAll(); }

  std::unique_ptr<AssessServer> StartServer(ServerOptions options = {}) {
    options.worker_threads =
        options.worker_threads > 0 ? options.worker_threads : 2;
    auto server = std::make_unique<AssessServer>(mini_.db.get(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  ClientOptions ResilientOptions(uint64_t seed) {
    ClientOptions options;
    options.max_retries = 6;
    options.backoff_base_ms = 2;
    options.backoff_cap_ms = 40;
    options.connect_timeout_ms = 2'000;
    options.read_timeout_ms = 5'000;
    options.write_timeout_ms = 5'000;
    options.seed = seed;
    return options;
  }

  testutil::MiniDb mini_;
  std::vector<AssessResult> expected_;
};

// ---------------------------------------------------------------------------
// The seeded schedules: arm 1-3 random failpoints, run concurrent clients
// with retries, and demand correct results or typed errors from every call.
// ---------------------------------------------------------------------------

struct CatalogEntry {
  const char* point;
  // Actions safe at this site ('corrupt' only where a corrupt site exists).
  std::vector<const char*> actions;
};

const std::vector<CatalogEntry>& Catalog() {
  static const std::vector<CatalogEntry> catalog = {
      {"server.accept", {"error"}},  // action irrelevant: triggering closes
      {"server.read_frame", {"error(unavailable)", "delay(%d)"}},
      {"server.write_frame", {"error(unavailable)", "delay(%d)"}},
      {"server.worker_dequeue", {"error(unavailable)", "delay(%d)"}},
      {"server.session_execute", {"error(unavailable)", "delay(%d)"}},
      {"net.write_frame", {"corrupt"}},
      {"storage.scan", {"error(unavailable)", "delay(%d)"}},
      {"pool.morsel", {"error(unavailable)", "delay(%d)"}},
      {"storage.join", {"error(unavailable)", "delay(%d)"}},
      {"storage.group_by", {"error(unavailable)", "delay(%d)"}},
      {"cache.lookup", {"error"}},  // triggering degrades to a miss
      {"cache.insert", {"error"}},  // triggering drops the insert
  };
  return catalog;
}

/// One seeded schedule: a spec string arming 1-3 distinct catalog points
/// with random action, probability, budget and seed.
std::string MakeSchedule(uint64_t seed) {
  Rng rng(seed * 7919 + 1);
  const auto& catalog = Catalog();
  int points = 1 + static_cast<int>(rng.Uniform(3));
  std::vector<size_t> picked;
  std::string spec;
  for (int i = 0; i < points; ++i) {
    size_t at = rng.Uniform(catalog.size());
    bool duplicate = false;
    for (size_t p : picked) duplicate |= (p == at);
    if (duplicate) continue;
    picked.push_back(at);
    const CatalogEntry& entry = catalog[at];
    const char* action = entry.actions[rng.Uniform(entry.actions.size())];
    char action_text[64];
    if (std::strstr(action, "%d") != nullptr) {
      std::snprintf(action_text, sizeof(action_text), action,
                    static_cast<int>(5 + rng.Uniform(21)));  // 5-25 ms
    } else {
      std::snprintf(action_text, sizeof(action_text), "%s", action);
    }
    char point[160];
    std::snprintf(point, sizeof(point),
                  "%s%s=%s:p=0.%d:budget=%d:seed=%llu", spec.empty() ? "" : ";",
                  entry.point, action_text,
                  static_cast<int>(1 + rng.Uniform(5)),           // p=0.1-0.5
                  static_cast<int>(1 + rng.Uniform(4)),           // budget 1-4
                  static_cast<unsigned long long>(rng.Next()));
    spec += point;
  }
  return spec;
}

TEST_F(ChaosTest, SeededSchedulesNeverProduceWrongAnswers) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  for (uint64_t seed = 0; seed < kSchedules; ++seed) {
    std::string schedule = MakeSchedule(seed);
    SCOPED_TRACE("schedule " + std::to_string(seed) + ": " + schedule);
    registry.DisarmAll();

    auto server = StartServer();
    ASSERT_TRUE(registry.ArmFromString(schedule).ok()) << schedule;

    constexpr int kClients = 2;
    constexpr int kQueriesPerClient = 3;
    std::atomic<int> ok_count{0};
    std::atomic<int> typed_errors{0};
    std::atomic<bool> harness_ok{true};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = AssessClient::Connect(
            "127.0.0.1", server->port(),
            ResilientOptions(seed * 1000 + static_cast<uint64_t>(c)));
        if (!client.ok()) {
          // server.accept chaos can defeat even the connect; that must
          // still be a typed, retryable condition.
          if (!IsAcceptableChaosError(client.status())) {
            harness_ok.store(false);
            ADD_FAILURE() << "connect: " << client.status().ToString();
          }
          typed_errors.fetch_add(kQueriesPerClient);
          return;
        }
        for (int q = 0; q < kQueriesPerClient; ++q) {
          size_t which = (static_cast<size_t>(c) + q) % kStatementCount;
          auto result = client->Query(kStatements[which]);
          if (result.ok()) {
            ExpectSameComputation(
                expected_[which], *result,
                "client " + std::to_string(c) + " query " + std::to_string(q));
            ok_count.fetch_add(1);
          } else if (IsAcceptableChaosError(result.status())) {
            typed_errors.fetch_add(1);
          } else {
            harness_ok.store(false);
            ADD_FAILURE() << "client " << c << " query " << q << ": "
                          << result.status().ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    registry.DisarmAll();  // before Stop(): drain without injection
    server->Stop();
    ASSERT_TRUE(harness_ok.load());
    ASSERT_EQ(ok_count.load() + typed_errors.load(),
              kClients * kQueriesPerClient);
  }
}

// With trigger budgets and enough retries, chaos must not cost any answers:
// every query eventually succeeds, bit-identically.
TEST_F(ChaosTest, BudgetedFaultsAlwaysRecover) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  auto server = StartServer();
  ASSERT_TRUE(registry
                  .ArmFromString(
                      "server.read_frame=error(unavailable):p=0.3:budget=4:"
                      "seed=11;"
                      "net.write_frame=corrupt:p=0.3:budget=4:seed=12;"
                      "storage.scan=error(unavailable):p=0.3:budget=4:seed=13")
                  .ok());
  // Three points, budget 4 each: at most 12 injected failures in total, so
  // 16 retries per call make recovery certain, not merely likely.
  ClientOptions options = ResilientOptions(99);
  options.max_retries = 16;
  auto client =
      AssessClient::Connect("127.0.0.1", server->port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int round = 0; round < 8; ++round) {
    size_t which = static_cast<size_t>(round) % kStatementCount;
    auto result = client->Query(kStatements[which]);
    ASSERT_TRUE(result.ok())
        << "round " << round << ": " << result.status().ToString();
    ExpectSameComputation(expected_[which], *result,
                          "round " + std::to_string(round));
  }
  registry.DisarmAll();
}

// ---------------------------------------------------------------------------
// Targeted fault scenarios.
// ---------------------------------------------------------------------------

// A corrupted frame (either direction) is detected by the CRC32C trailer,
// surfaced as kCorruptFrame, and healed by one retry on a fresh connection.
TEST_F(ChaosTest, CorruptedFrameIsDetectedAndRetried) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  auto server = StartServer();
  ASSERT_TRUE(
      registry.ArmFromString("net.write_frame=corrupt:budget=1:seed=5").ok());
  auto client = AssessClient::Connect("127.0.0.1", server->port(),
                                      ResilientOptions(7));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = client->Query(kStatements[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameComputation(expected_[0], *result, "after corruption");
  EXPECT_EQ(registry.triggers("net.write_frame"), 1u)
      << "the corruption was never injected";
  registry.DisarmAll();
}

// Without retries, the same corruption surfaces as a typed kCorruptFrame —
// never a garbled result.
TEST_F(ChaosTest, CorruptedResponseWithoutRetriesIsTyped) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  auto server = StartServer();
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Arm after connecting; the first WriteFrame in either direction is hit.
  ASSERT_TRUE(
      registry.ArmFromString("net.write_frame=corrupt:budget=1:seed=5").ok());
  auto result = client->Query(kStatements[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptFrame)
      << result.status().ToString();
  registry.DisarmAll();
}

// The server deduplicates by request id: a replayed id returns the stored
// response even when the (bogus) retried statement differs — proof the
// second arrival did not execute.
TEST_F(ChaosTest, RequestIdReplayReturnsStoredResponse) {
  auto server = StartServer();
  int fd = -1;
  {
    auto connected = ConnectTo("127.0.0.1", server->port(), 2'000);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    fd = *connected;
  }
  constexpr uint64_t kId = 0xFEEDFACE12345678ULL;
  ASSERT_TRUE(WriteFrame(fd, FrameType::kQuery,
                         EncodeQueryPayload(kId, kStatements[1]))
                  .ok());
  Frame first;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &first).ok());
  ASSERT_EQ(first.type, FrameType::kResult);

  // Same id, different (even invalid) statement: the stored response comes
  // back verbatim.
  ASSERT_TRUE(WriteFrame(fd, FrameType::kQuery,
                         EncodeQueryPayload(kId, "syntactically !! invalid"))
                  .ok());
  Frame replayed;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &replayed).ok());
  EXPECT_EQ(replayed.type, FrameType::kResult);
  EXPECT_EQ(replayed.payload, first.payload);

  // A different id does execute — and the invalid statement now fails.
  ASSERT_TRUE(WriteFrame(fd, FrameType::kQuery,
                         EncodeQueryPayload(kId + 1,
                                            "syntactically !! invalid"))
                  .ok());
  Frame fresh;
  ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &fresh).ok());
  EXPECT_EQ(fresh.type, FrameType::kError);
  CloseSocket(fd);
  server->Stop();
}

// Request id 0 opts out of dedup: two identical id-0 requests both execute.
TEST_F(ChaosTest, RequestIdZeroIsNeverDeduplicated) {
  auto server = StartServer();
  int fd = -1;
  {
    auto connected = ConnectTo("127.0.0.1", server->port(), 2'000);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    fd = *connected;
  }
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(WriteFrame(fd, FrameType::kQuery,
                           EncodeQueryPayload(0, kStatements[1]))
                    .ok());
    Frame frame;
    ASSERT_TRUE(ReadFrame(fd, kDefaultMaxFrameBytes, &frame).ok());
    EXPECT_EQ(frame.type, FrameType::kResult);
  }
  CloseSocket(fd);
  auto stats = server->Snapshot();
  EXPECT_EQ(stats.ok_responses, 2u) << "id 0 must execute every time";
  server->Stop();
}

// The kFailpoint admin frame: refused by default, honoured (arm, describe,
// then injected fault) when the server opts in.
TEST_F(ChaosTest, FailpointAdminFrameArmsAndDisarms) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  {
    auto locked = StartServer();  // default: admin disabled
    auto client = AssessClient::Connect("127.0.0.1", locked->port());
    ASSERT_TRUE(client.ok());
    auto refused = client->Failpoint("storage.scan=error");
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kNotSupported);
  }
  ServerOptions options;
  options.allow_failpoint_admin = true;
  auto server = StartServer(options);
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  auto armed = client->Failpoint(
      "server.session_execute=error(unavailable, injected by admin):budget=1");
  ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  EXPECT_NE(armed->find("server.session_execute"), std::string::npos);

  auto failed = client->Query(kStatements[0]);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  // The reply is stamped with the client's trace id: "trace 0x...: <message>".
  EXPECT_NE(failed.status().message().find("injected by admin"),
            std::string::npos)
      << failed.status().message();
  EXPECT_NE(failed.status().message().find("trace 0x"), std::string::npos)
      << failed.status().message();

  // Budget spent: the same connection serves the query fine now.
  auto result = client->Query(kStatements[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameComputation(expected_[0], *result, "after budget");

  auto disarmed = client->Failpoint("server.session_execute=off");
  ASSERT_TRUE(disarmed.ok());
  EXPECT_EQ(*disarmed, "no failpoints armed");
}

// An injected storage-layer failure comes back as its typed error and does
// not cost the connection.
TEST_F(ChaosTest, InjectedStorageErrorIsTypedAndSurvivable) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  auto server = StartServer();
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(registry
                  .ArmFromString(
                      "storage.scan=error(internal, disk gremlins):budget=1")
                  .ok());
  auto failed = client->Query(kStatements[3]);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(client->connected()) << "typed error must not cost the link";
  auto result = client->Query(kStatements[3]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameComputation(expected_[3], *result, "after injected error");
  registry.DisarmAll();
}

// A failed morsel inside the shared scan pool surfaces as its typed error —
// the job stops claiming further morsels, the pool and the connection both
// survive, and a clean retry recomputes the bit-identical answer.
TEST_F(ChaosTest, FailedMorselIsTypedErrorNotAHang) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  auto server = StartServer();
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(registry
                  .ArmFromString(
                      "pool.morsel=error(internal, morsel gremlins):budget=1")
                  .ok());
  auto failed = client->Query(kStatements[3]);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(client->connected()) << "typed error must not cost the link";
  auto result = client->Query(kStatements[3]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameComputation(expected_[3], *result, "after morsel failure");
  registry.DisarmAll();
}

// A stuck morsel (injected delay at the pool's execution site) only slows
// the scan down; the answer is still bit-identical.
TEST_F(ChaosTest, DelayedMorselStillCompletes) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  auto server = StartServer();
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(registry.ArmFromString("pool.morsel=delay(25):budget=4").ok());
  auto result = client->Query(kStatements[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameComputation(expected_[0], *result, "after delayed morsels");
  registry.DisarmAll();
}

// A degraded cache (lookups miss, inserts dropped) never changes answers.
TEST_F(ChaosTest, DegradedCacheNeverChangesResults) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  auto server = StartServer();
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(registry
                  .ArmFromString("cache.lookup=error:p=0.5:seed=3;"
                                 "cache.insert=error:p=0.5:seed=4")
                  .ok());
  for (int round = 0; round < 6; ++round) {
    size_t which = static_cast<size_t>(round) % kStatementCount;
    auto result = client->Query(kStatements[which]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameComputation(expected_[which], *result,
                          "round " + std::to_string(round));
  }
  registry.DisarmAll();
}

// A failing trace sink must be invisible to clients: with the slow-query
// log tracing every request and the emit site erroring every time, results
// stay bit-identical, the connection survives, and the failure is only a
// counter — the response was produced before the emit was attempted.
TEST_F(ChaosTest, FailingTraceSinkNeverCorruptsResults) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  if (!kTracingCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_TRACING=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  ServerOptions options;
  options.slow_query_ms = 0;  // every traced query goes through the sink
  auto server = StartServer(options);
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      registry.ArmFromString("trace.emit=error(internal, sink down)").ok());
  for (int round = 0; round < 6; ++round) {
    size_t which = static_cast<size_t>(round) % kStatementCount;
    auto result = client->Query(kStatements[which]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameComputation(expected_[which], *result,
                          "round " + std::to_string(round));
  }
  EXPECT_TRUE(client->connected());
  EXPECT_GT(registry.triggers("trace.emit"), 0u)
      << "the sink failure was never injected";
  auto stats = server->Snapshot();
  EXPECT_EQ(stats.traces_sampled, 6u);
  EXPECT_EQ(stats.slow_queries, 6u)
      << "a failing sink must not lose the slow-query count";
  registry.DisarmAll();
  server->Stop();
}

// A slow trace sink only delays the worker after the response bytes are
// ready; queries still answer correctly and the server drains cleanly.
TEST_F(ChaosTest, SlowTraceSinkOnlySlowsDown) {
  if (!kFailpointsCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_FAILPOINTS=OFF";
  }
  if (!kTracingCompiledIn) {
    GTEST_SKIP() << "built with ASSESS_TRACING=OFF";
  }
  auto& registry = FailpointRegistry::Instance();
  ServerOptions options;
  options.slow_query_ms = 0;
  auto server = StartServer(options);
  auto client = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(registry.ArmFromString("trace.emit=delay(25):budget=4").ok());
  for (int round = 0; round < 4; ++round) {
    size_t which = static_cast<size_t>(round) % kStatementCount;
    auto result = client->Query(kStatements[which]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameComputation(expected_[which], *result,
                          "round " + std::to_string(round));
  }
  registry.DisarmAll();
  server->Stop();  // a hung emit would deadlock this drain
}

// ---------------------------------------------------------------------------
// Deadline and retry behaviour that needs no failpoints.
// ---------------------------------------------------------------------------

// A read deadline expiry surfaces as kTimeout; with retries the client
// reconnects and — thanks to request-id dedup — still gets the answer the
// first execution produced.
TEST_F(ChaosTest, ReadDeadlineThenRetryRecovers) {
  ServerOptions options;
  std::atomic<bool> slow_once{true};
  options.pre_execute_hook = [&slow_once] {
    if (slow_once.exchange(false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  };
  auto server = StartServer(options);

  ClientOptions no_retry;
  no_retry.read_timeout_ms = 100;
  no_retry.seed = 21;
  {
    auto client =
        AssessClient::Connect("127.0.0.1", server->port(), no_retry);
    ASSERT_TRUE(client.ok());
    auto timed_out = client->Query(kStatements[2]);
    ASSERT_FALSE(timed_out.ok());
    EXPECT_EQ(timed_out.status().code(), StatusCode::kTimeout);
    EXPECT_FALSE(client->connected())
        << "an expired read leaves the stream mid-frame; it must close";
  }

  slow_once.store(true);
  ClientOptions with_retry = no_retry;
  with_retry.max_retries = 4;
  with_retry.backoff_base_ms = 50;
  with_retry.seed = 22;
  auto client =
      AssessClient::Connect("127.0.0.1", server->port(), with_retry);
  ASSERT_TRUE(client.ok());
  auto result = client->Query(kStatements[2]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameComputation(expected_[2], *result, "after deadline retry");
}

// Connecting to a server that went away: with retries the client keeps
// trying and reports kUnavailable/kTimeout, never hangs.
TEST_F(ChaosTest, VanishedServerIsTypedNotHung) {
  uint16_t dead_port;
  {
    auto server = StartServer();
    dead_port = server->port();
    server->Stop();
  }
  ClientOptions options = ResilientOptions(31);
  options.max_retries = 2;
  auto started = std::chrono::steady_clock::now();
  auto client = AssessClient::Connect("127.0.0.1", dead_port, options);
  auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(IsAcceptableChaosError(client.status()))
      << client.status().ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

// An established client survives a server restart on the same port.
TEST_F(ChaosTest, ClientReconnectsAfterServerRestart) {
  ServerOptions options;
  auto server = StartServer(options);
  uint16_t port = server->port();

  ClientOptions retrying = ResilientOptions(41);
  auto client = AssessClient::Connect("127.0.0.1", port, retrying);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Query(kStatements[0]).ok());

  server->Stop();
  options.port = port;  // rebind the same port
  server = StartServer(options);

  auto result = client->Query(kStatements[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameComputation(expected_[0], *result, "after restart");
}

}  // namespace
}  // namespace assess
