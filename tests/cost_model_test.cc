#include "assess/cost_model.h"

#include <gtest/gtest.h>

#include <sstream>

#include "assess/session.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() {
    SsbConfig config;
    config.scale_factor = 0.01;
    db_ = std::move(BuildSsbDatabase(config)).value();
    session_ = std::make_unique<AssessSession>(db_.get());
    estimator_ = std::make_unique<CostEstimator>(db_.get());
  }

  AnalyzedStatement Must(const std::string& text) {
    auto analyzed = session_->Prepare(text);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    return std::move(analyzed).value();
  }

  std::unique_ptr<StarDatabase> db_;
  std::unique_ptr<AssessSession> session_;
  std::unique_ptr<CostEstimator> estimator_;
};

TEST_F(CostModelTest, SelectivityOfEquality) {
  AnalyzedStatement a =
      Must("with SSB for s_region = 'ASIA' by customer, s_region assess "
           "quantity against s_region = 'AMERICA' labels quartiles");
  auto selectivity =
      estimator_->EstimateSelectivity(*a.schema, a.target.predicates);
  ASSERT_TRUE(selectivity.ok());
  EXPECT_DOUBLE_EQ(*selectivity, 0.2);  // 1 of 5 regions
}

TEST_F(CostModelTest, SelectivityOfConjunction) {
  AnalyzedStatement a = Must(
      "with SSB for s_region = 'ASIA', c_region = 'EUROPE' by customer "
      "assess quantity labels quartiles");
  auto selectivity =
      estimator_->EstimateSelectivity(*a.schema, a.target.predicates);
  ASSERT_TRUE(selectivity.ok());
  EXPECT_DOUBLE_EQ(*selectivity, 0.04);  // independence: 0.2 * 0.2
}

TEST_F(CostModelTest, SelectivityOfInAndBetween) {
  AnalyzedStatement in_stmt = Must(
      "with SSB for s_region in ('ASIA', 'EUROPE') by customer assess "
      "quantity labels quartiles");
  EXPECT_DOUBLE_EQ(*estimator_->EstimateSelectivity(
                       *in_stmt.schema, in_stmt.target.predicates),
                   0.4);
  AnalyzedStatement between = Must(
      "with SSB for month between '1998-01' and '1998-06' by customer "
      "assess quantity labels quartiles");
  EXPECT_NEAR(*estimator_->EstimateSelectivity(*between.schema,
                                               between.target.predicates),
              6.0 / 84.0, 1e-12);
}

TEST_F(CostModelTest, CellEstimateWithinFactorOfActual) {
  // The estimator should land within a small factor of the real |C| for
  // the workload queries (enough precision for plan choice).
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    AnalyzedStatement a = Must(stmt.text);
    auto estimate = estimator_->EstimateCells(a.target);
    ASSERT_TRUE(estimate.ok()) << stmt.name;
    auto actual = session_->Query(stmt.text);
    ASSERT_TRUE(actual.ok());
    double real = static_cast<double>(actual->cube.NumRows());
    EXPECT_GT(*estimate, real / 5.0) << stmt.name;
    EXPECT_LT(*estimate, real * 5.0 + 10.0) << stmt.name;
  }
}

TEST_F(CostModelTest, CostOrderingMatchesSection6) {
  // POP cheapest for sibling and past; JOP <= NP for external.
  AnalyzedStatement sibling = Must(SsbWorkload()[2].text);
  auto ranked = estimator_->RankPlans(sibling);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].plan, PlanKind::kPOP);
  EXPECT_LE((*ranked)[0].cost, (*ranked)[1].cost);
  EXPECT_LE((*ranked)[1].cost, (*ranked)[2].cost);

  AnalyzedStatement external = Must(SsbWorkload()[1].text);
  auto ext_ranked = estimator_->RankPlans(external);
  ASSERT_TRUE(ext_ranked.ok());
  ASSERT_EQ(ext_ranked->size(), 2u);
  EXPECT_EQ((*ext_ranked)[0].plan, PlanKind::kJOP);

  AnalyzedStatement past = Must(SsbWorkload()[3].text);
  auto past_choice = estimator_->ChoosePlan(past);
  ASSERT_TRUE(past_choice.ok());
  EXPECT_EQ(*past_choice, PlanKind::kPOP);

  AnalyzedStatement constant = Must(SsbWorkload()[0].text);
  EXPECT_EQ(*estimator_->ChoosePlan(constant), PlanKind::kNP);
}

TEST_F(CostModelTest, InfeasiblePlanIsRejected) {
  AnalyzedStatement constant = Must(SsbWorkload()[0].text);
  EXPECT_EQ(
      estimator_->EstimatePlanCost(constant, PlanKind::kPOP).status().code(),
      StatusCode::kNotSupported);
}

TEST_F(CostModelTest, CostsArePositiveAndScaleWithData) {
  SsbConfig big_config;
  big_config.scale_factor = 0.05;
  auto big_db = std::move(BuildSsbDatabase(big_config)).value();
  AssessSession big_session(big_db.get());
  CostEstimator big_estimator(big_db.get());
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    AnalyzedStatement small_stmt = Must(stmt.text);
    auto small_cost = estimator_->EstimatePlanCost(small_stmt, PlanKind::kNP);
    auto big_prepared = big_session.Prepare(stmt.text);
    ASSERT_TRUE(big_prepared.ok());
    auto big_cost = big_estimator.EstimatePlanCost(*big_prepared,
                                                   PlanKind::kNP);
    ASSERT_TRUE(small_cost.ok() && big_cost.ok()) << stmt.name;
    EXPECT_GT(*small_cost, 0.0);
    EXPECT_GT(*big_cost, *small_cost) << stmt.name;
  }
}

TEST_F(CostModelTest, SessionCostBasedSelection) {
  session_->set_plan_selection(PlanSelection::kCostBased);
  auto sibling = session_->Query(SsbWorkload()[2].text);
  ASSERT_TRUE(sibling.ok());
  EXPECT_EQ(sibling->plan, PlanKind::kPOP);
  auto ranked = session_->RankPlans(SsbWorkload()[2].text);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->front().plan, PlanKind::kPOP);
  session_->set_plan_selection(PlanSelection::kRuleBased);
}

// --- CSV export --------------------------------------------------------

TEST(CsvExportTest, CubeCsvRoundsTripStructure) {
  testutil::MiniDb mini = BuildMiniSales();
  AssessSession session(mini.db.get());
  auto result = session.Query(
      "with SALES for type = 'Fresh Fruit', country = 'Italy' "
      "by product, country assess quantity against country = 'France' "
      "using difference(quantity, benchmark.quantity) "
      "labels {[-inf, 0): behind, [0, inf]: ahead}");
  ASSERT_TRUE(result.ok());
  std::ostringstream out;
  result->WriteCsv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("product,country,quantity,benchmark.quantity,"
                     "difference,label"),
            std::string::npos);
  EXPECT_NE(csv.find("Apple,Italy,100,150,-50,behind"), std::string::npos);
  EXPECT_NE(csv.find("Lemon,Italy,30,20,10,ahead"), std::string::npos);
  // Header + 3 cells.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(CsvExportTest, FieldsWithSeparatorsAreQuoted) {
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  MemberId weird = hier->AddMember(0, "a,b\"c");
  Cube cube({LevelRef{hier, 0}}, {"m"});
  cube.AddRow({weird}, {1.0});
  std::ostringstream out;
  cube.WriteCsv(out);
  EXPECT_NE(out.str().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(CsvExportTest, NullMeasuresAreEmptyFields) {
  auto hier = std::make_shared<Hierarchy>("H");
  hier->AddLevel("k");
  MemberId a = hier->AddMember(0, "a");
  Cube cube({LevelRef{hier, 0}}, {"m", "n"});
  cube.AddRow({a}, {kNullMeasure, 2.0});
  std::ostringstream out;
  cube.WriteCsv(out);
  EXPECT_NE(out.str().find("a,,2"), std::string::npos);
}

}  // namespace
}  // namespace assess
