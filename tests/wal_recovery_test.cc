// Crash recovery end to end: the DurabilityManager's bootstrap/recover
// cycle, a 200-point seeded crash matrix (the WAL tail truncated at swept
// byte offsets, recovery always landing bit-identically on a
// committed-epoch prefix), bit-flip discrimination (torn tail repaired,
// mid-log damage refused typed), SIGKILLed child processes whose
// acknowledged batches must all survive, checkpoint failpoints, the
// wal.append failpoint surfacing as the batch's typed error, and the
// epoch-keyed MV/cache state rebuilding consistently across a restart.

#include "wal/durability.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "assess/session.h"
#include "common/failpoint.h"
#include "ingest/ingestor.h"
#include "olap/group_by_set.h"
#include "storage/star_query_engine.h"
#include "test_util.h"
#include "wal/checkpoint.h"

namespace assess {
namespace {

namespace fs = std::filesystem;

using ::assess::testutil::BuildMiniSales;
using ::assess::testutil::CellMap;

Result<std::unique_ptr<StarDatabase>> Bootstrap() {
  return std::move(BuildMiniSales().db);
}

/// Deterministic batch `i`: 1-3 rows over existing members only, so replay
/// and reconstruction agree byte for byte.
std::string BatchText(int i) {
  static const char* kProducts[] = {"Apple", "Pear", "Lemon"};
  static const char* kStores[] = {"SmartMart", "PetitPrix"};
  static const char* kDates[] = {"1997-07-01", "1997-07-02"};
  std::string text = "date,product,store,quantity,sales\n";
  const int rows = i % 3 + 1;
  for (int j = 0; j < rows; ++j) {
    char line[96];
    std::snprintf(line, sizeof(line), "%s,%s,%s,%d,%d\n",
                  kDates[(i + j) % 2], kProducts[(i + 2 * j) % 3],
                  kStores[(i + j) % 2], (i % 7) + j + 1, (i % 5) + 2 * j + 1);
    text += line;
  }
  return text;
}

/// One ingest call = one epoch-stamped batch = one WAL record.
Result<IngestStats> IngestBatch(StarDatabase* db, DurabilityManager* mgr,
                                int i) {
  IngestOptions options;
  options.durability = mgr;
  Ingestor ingestor(db, /*cache=*/nullptr, options);
  return ingestor.IngestText("SALES", BatchText(i));
}

/// Everything "bit-identical to a committed-epoch prefix" means for the
/// mini database: row count, exact epoch, the full finest-grain contents
/// of both measures, and an end-to-end query result.
struct Signature {
  int64_t rows = 0;
  uint64_t epoch = 0;
  std::map<std::vector<std::string>, double> quantity;
  std::map<std::vector<std::string>, double> sales;
  std::map<std::vector<std::string>, double> query;

  bool operator==(const Signature& other) const {
    return rows == other.rows && epoch == other.epoch &&
           quantity == other.quantity && sales == other.sales &&
           query == other.query;
  }
};

Signature Sig(StarDatabase* db) {
  const BoundCube* bound = *db->Find("SALES");
  Signature sig;
  sig.rows = bound->facts().NumRows();
  sig.epoch = bound->facts().epoch();

  StarQueryEngine engine(db, /*use_views=*/false, /*threads=*/1);
  auto group_by = GroupBySet::FromLevelNames(bound->schema(),
                                             {"date", "product", "store"});
  EXPECT_TRUE(group_by.ok()) << group_by.status().ToString();
  auto cube = engine.AggregateFactRange(*bound, *group_by, 0, sig.rows);
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  sig.quantity = CellMap(*cube, "quantity");
  sig.sales = CellMap(*cube, "sales");

  AssessSession session(db);
  auto result = session.Query(
      "with SALES by product, store assess quantity labels quartiles");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  sig.query = CellMap(result->cube, "quantity");
  return sig;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  WalRecoveryTest() {
    root_ = fs::temp_directory_path() /
            ("assess_recovery_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(root_);
    data_dir_ = (root_ / "data").string();
  }
  ~WalRecoveryTest() override {
    FailpointRegistry::Instance().DisarmAll();
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  Result<std::unique_ptr<DurabilityManager>> Open(
      const std::string& dir, FsyncMode mode = FsyncMode::kAlways) {
    DurabilityOptions options;
    options.wal.fsync_mode = mode;
    options.checkpoint_wal_bytes = 0;  // checkpoints only when tests ask
    return DurabilityManager::Open(dir, options, Bootstrap);
  }

  /// The newest (active) WAL segment under `dir`'s wal/ subdirectory.
  static fs::path LastSegment(const std::string& dir) {
    fs::path last;
    for (const auto& entry : fs::directory_iterator(fs::path(dir) / "wal")) {
      if (last.empty() || entry.path() > last) last = entry.path();
    }
    EXPECT_FALSE(last.empty());
    return last;
  }

  fs::path root_;
  std::string data_dir_;
};

TEST_F(WalRecoveryTest, FreshStartSealsCheckpointOneAndReopensCleanly) {
  Signature initial;
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_TRUE((*mgr)->recovery().fresh_start);
    EXPECT_EQ((*mgr)->recovery().checkpoint_seq, 1u);
    initial = Sig((*mgr)->db());
  }
  EXPECT_TRUE(fs::exists(fs::path(data_dir_) / "CURRENT"));
  EXPECT_TRUE(fs::exists(fs::path(data_dir_) / "checkpoint-0000000001"));

  auto reopened = Open(data_dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE((*reopened)->recovery().fresh_start);
  EXPECT_EQ((*reopened)->recovery().replayed_records, 0u);
  EXPECT_TRUE(Sig((*reopened)->db()) == initial);
}

TEST_F(WalRecoveryTest, AcknowledgedBatchesSurviveARestart) {
  Signature committed;
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    for (int i = 0; i < 5; ++i) {
      auto stats = IngestBatch((*mgr)->db(), mgr->get(), i);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->batches, 1u);
    }
    WalStats wal = (*mgr)->wal_stats();
    EXPECT_EQ(wal.appends, 5u);
    EXPECT_GE(wal.fsyncs, 5u);  // kAlways: one per commit (plus none extra)
    committed = Sig((*mgr)->db());
  }

  auto reopened = Open(data_dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().replayed_records, 5u);
  EXPECT_FALSE((*reopened)->recovery().tail_truncated);
  EXPECT_TRUE(Sig((*reopened)->db()) == committed);
}

TEST_F(WalRecoveryTest, CheckpointTruncatesTheLogAndShortensRecovery) {
  Signature committed;
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), i).ok());
    }
    ASSERT_TRUE((*mgr)->Checkpoint().ok());
    EXPECT_EQ((*mgr)->checkpoints(), 1u);
    for (int i = 4; i < 6; ++i) {
      ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), i).ok());
    }
    committed = Sig((*mgr)->db());
  }
  // The checkpoint superseded checkpoint 1 and the pre-checkpoint segment.
  EXPECT_FALSE(fs::exists(fs::path(data_dir_) / "checkpoint-0000000001"));
  EXPECT_TRUE(fs::exists(fs::path(data_dir_) / "checkpoint-0000000002"));

  auto reopened = Open(data_dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().checkpoint_seq, 2u);
  // Only the two post-checkpoint batches replay.
  EXPECT_EQ((*reopened)->recovery().replayed_records, 2u);
  EXPECT_TRUE(Sig((*reopened)->db()) == committed);
}

// The crash matrix: commit a known batch sequence, then simulate a kill at
// 200 seeded byte offsets by truncating a copy of the WAL there. Every
// recovery must land bit-identically on a committed-epoch prefix — the
// tables, the epoch and query results of some state that actually existed.
TEST_F(WalRecoveryTest, CrashMatrixRecoversACommittedEpochPrefix) {
  std::map<uint64_t, Signature> reference;
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    Signature base = Sig((*mgr)->db());
    reference[base.epoch] = base;
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), i).ok());
      Signature sig = Sig((*mgr)->db());
      reference[sig.epoch] = sig;
    }
  }

  const fs::path segment = LastSegment(data_dir_);
  const uint64_t segment_size = fs::file_size(segment);
  ASSERT_GT(segment_size, 16u);

  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<uint64_t> offset_dist(0, segment_size);
  int full_recoveries = 0, partial_recoveries = 0;
  for (int point = 0; point < 200; ++point) {
    // Sweep the boundaries deterministically, then seeded interior points.
    const uint64_t cut = point == 0 ? 0
                         : point == 1 ? segment_size
                                      : offset_dist(rng);
    const fs::path scratch = root_ / ("cut_" + std::to_string(point));
    fs::copy(data_dir_, scratch, fs::copy_options::recursive);
    fs::resize_file(scratch / "wal" / segment.filename(), cut);

    auto mgr = Open(scratch.string());
    ASSERT_TRUE(mgr.ok()) << "cut at byte " << cut << ": "
                          << mgr.status().ToString();
    Signature sig = Sig((*mgr)->db());
    auto it = reference.find(sig.epoch);
    ASSERT_NE(it, reference.end())
        << "cut at byte " << cut << " recovered unknown epoch " << sig.epoch;
    EXPECT_TRUE(sig == it->second) << "cut at byte " << cut
                                   << " diverged at epoch " << sig.epoch;
    if (sig.epoch == reference.rbegin()->first) {
      ++full_recoveries;
    } else {
      ++partial_recoveries;
    }
    mgr->reset();
    fs::remove_all(scratch);
  }
  // The sweep genuinely exercised both extremes.
  EXPECT_GT(full_recoveries, 0);
  EXPECT_GT(partial_recoveries, 0);
}

TEST_F(WalRecoveryTest, BitFlipInTheLastRecordIsRepairedAsATornTail) {
  std::map<uint64_t, Signature> reference;
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), i).ok());
      Signature sig = Sig((*mgr)->db());
      reference[sig.epoch] = sig;
    }
  }
  const fs::path segment = LastSegment(data_dir_);
  std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-1, std::ios::end);
  f.put('\xFF');
  f.close();

  auto mgr = Open(data_dir_);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_TRUE((*mgr)->recovery().tail_truncated);
  EXPECT_GT((*mgr)->recovery().truncated_bytes, 0u);
  EXPECT_EQ((*mgr)->recovery().replayed_records, 3u);
  Signature sig = Sig((*mgr)->db());
  ASSERT_TRUE(reference.count(sig.epoch));
  EXPECT_TRUE(sig == reference[sig.epoch]);
}

TEST_F(WalRecoveryTest, BitFlipMidLogRefusesRecoveryTyped) {
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), i).ok());
    }
  }
  // Damage the first record's payload; three valid records follow it, so
  // this cannot be a torn tail and recovery must refuse to guess.
  const fs::path segment = LastSegment(data_dir_);
  std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(16 + 8 + 20, std::ios::beg);
  f.put('\xFF');
  f.close();

  auto mgr = Open(data_dir_);
  ASSERT_FALSE(mgr.ok());
  EXPECT_EQ(mgr.status().code(), StatusCode::kCorruptWal);
}

TEST_F(WalRecoveryTest, CorruptedCheckpointColumnRefusesRecoveryTyped) {
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), 0).ok());
  }
  // Same size, different bytes: only the manifest's CRC32C can tell.
  const fs::path column =
      fs::path(data_dir_) / "checkpoint-0000000001" / "SALES.m0.bin";
  ASSERT_TRUE(fs::exists(column));
  std::fstream f(column, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(3, std::ios::beg);
  f.put('\x5A');
  f.close();

  auto mgr = Open(data_dir_);
  ASSERT_FALSE(mgr.ok());
  EXPECT_EQ(mgr.status().code(), StatusCode::kCorruptCheckpoint);
}

// Satellite: a WAL append failure must surface as the batch's typed error,
// abort the commit with no half-published epoch, and release every lock —
// later batches (auto-insert included) proceed normally.
TEST_F(WalRecoveryTest, WalAppendFailureIsTheBatchsTypedError) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  auto mgr = Open(data_dir_);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  StarDatabase* db = (*mgr)->db();
  ASSERT_TRUE(IngestBatch(db, mgr->get(), 0).ok());
  const Signature before = Sig(db);

  ASSERT_TRUE(
      FailpointRegistry::Instance()
          .ArmFromString("wal.append=error(unavailable,walfull):budget=1")
          .ok());
  auto failed = IngestBatch(db, mgr->get(), 1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.status().message().find("walfull"), std::string::npos);
  FailpointRegistry::Instance().DisarmAll();

  // Nothing published: same rows, same epoch, same cells.
  EXPECT_TRUE(Sig(db) == before);

  // Locks were released exactly once — an auto-insert batch (which takes
  // the exclusive schema lock) and a plain batch both still commit.
  IngestOptions options;
  options.durability = mgr->get();
  options.auto_insert_members = true;
  Ingestor ingestor(db, nullptr, options);
  auto inserted = ingestor.IngestText(
      "SALES",
      "date,product,type,store,quantity,sales\n"
      "1997-07-02,Kiwi,Fresh Fruit,SmartMart,4,9\n");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(inserted->new_members, 1u);
  EXPECT_EQ(inserted->epoch, before.epoch + 1);
  auto plain = IngestBatch(db, mgr->get(), 2);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->epoch, before.epoch + 2);

  // And the WAL holds exactly the three committed batches, replayable.
  const Signature committed = Sig(db);
  mgr->reset();
  auto reopened = Open(data_dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().replayed_records, 3u);
  EXPECT_TRUE(Sig((*reopened)->db()) == committed);
}

TEST_F(WalRecoveryTest, FailedCheckpointRenameKeepsThePreviousOneLive) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  auto mgr = Open(data_dir_);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), 0).ok());
  const Signature committed = Sig((*mgr)->db());

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ArmFromString("checkpoint.rename=error(internal):budget=1")
                  .ok());
  ASSERT_FALSE((*mgr)->Checkpoint().ok());
  FailpointRegistry::Instance().DisarmAll();

  // The snapshot attempt failed after the WAL rotated: CURRENT still names
  // checkpoint 1 and the sealed segments still cover the batch.
  auto current = ReadCurrentCheckpoint(data_dir_);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 1u);

  // Ingest keeps working, and a retried checkpoint succeeds.
  ASSERT_TRUE(IngestBatch((*mgr)->db(), mgr->get(), 1).ok());
  ASSERT_TRUE((*mgr)->Checkpoint().ok());
  const Signature final_state = Sig((*mgr)->db());
  mgr->reset();

  auto reopened = Open(data_dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().checkpoint_seq, 2u);
  EXPECT_EQ((*reopened)->recovery().replayed_records, 0u);
  EXPECT_TRUE(Sig((*reopened)->db()) == final_state);
}

// Restart consistency for the epoch-keyed derived state: the recovered
// fact table carries the *exact* pre-crash epoch (not a re-derived one), so
// epoch-stamped cache keys and view sets line up, and a re-materialized
// view lands on identical contents at the identical epoch.
TEST_F(WalRecoveryTest, EpochKeyedViewStateRebuildsConsistently) {
  Signature committed;
  std::map<std::vector<std::string>, double> view_cells;
  uint64_t view_epoch = 0;
  {
    auto mgr = Open(data_dir_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    StarDatabase* db = (*mgr)->db();
    StarQueryEngine engine(db);
    ASSERT_TRUE(
        engine.MaterializeView(db, "SALES", {"product", "store"}, "mv_ps")
            .ok());
    for (int i = 0; i < 3; ++i) {
      auto stats = IngestBatch(db, mgr->get(), i);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_GE(stats->mv_incremental_updates, 1u);
    }
    const BoundCube* bound = *db->Find("SALES");
    auto views = bound->views_snapshot();
    ASSERT_EQ(views->views.size(), 1u);
    // Incremental maintenance kept the view current with the fact epoch.
    EXPECT_EQ(views->epoch, bound->facts().epoch());
    view_cells = CellMap(views->views[0].data, "quantity");
    view_epoch = views->epoch;
    committed = Sig(db);
  }

  auto reopened = Open(data_dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  StarDatabase* db = (*reopened)->db();
  EXPECT_TRUE(Sig(db) == committed);

  // Views are in-memory state: re-declare the same view and it must land
  // on identical contents stamped with the identical (restored) epoch.
  StarQueryEngine engine(db);
  ASSERT_TRUE(
      engine.MaterializeView(db, "SALES", {"product", "store"}, "mv_ps")
          .ok());
  const BoundCube* bound = *db->Find("SALES");
  auto views = bound->views_snapshot();
  ASSERT_EQ(views->views.size(), 1u);
  EXPECT_EQ(views->epoch, view_epoch);
  EXPECT_EQ(views->epoch, bound->facts().epoch());
  EXPECT_EQ(CellMap(views->views[0].data, "quantity"), view_cells);
}

// The durability promise under a real kill -9: a child process ingests
// batches, fsyncing an acknowledgment line after each committed batch, and
// is SIGKILLed at a seeded random moment. Recovery must contain every
// acknowledged batch, and the recovered state must equal re-ingesting the
// same batch prefix into a fresh database (replay determinism).
TEST_F(WalRecoveryTest, SigkilledProcessKeepsEveryAcknowledgedBatch) {
  std::mt19937_64 rng(1997);
  for (int round = 0; round < 4; ++round) {
    const fs::path dir = root_ / ("kill_" + std::to_string(round));
    const fs::path ack_path = root_ / ("ack_" + std::to_string(round));

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: never returns into gtest. Acknowledge each committed batch
      // only after its durable commit, exactly like a kIngestReply.
      DurabilityOptions options;
      options.wal.fsync_mode = FsyncMode::kAlways;
      options.checkpoint_wal_bytes = 0;
      auto opened = DurabilityManager::Open(dir.string(), options, Bootstrap);
      if (!opened.ok()) ::_exit(3);
      std::unique_ptr<DurabilityManager> mgr = std::move(*opened);
      int ack_fd = ::open(ack_path.c_str(),
                          O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (ack_fd < 0) ::_exit(4);
      for (int i = 0;; ++i) {
        auto stats = IngestBatch(mgr->db(), mgr.get(), i);
        if (!stats.ok()) ::_exit(5);
        char line[64];
        int n = std::snprintf(line, sizeof(line), "%llu\n",
                              static_cast<unsigned long long>(stats->epoch));
        if (::write(ack_fd, line, n) != n) ::_exit(6);
        if (::fsync(ack_fd) != 0) ::_exit(7);
      }
    }

    // Parent: wait for the first acknowledgment, then kill a little later.
    for (int spin = 0; spin < 5000; ++spin) {
      std::error_code ec;
      if (fs::exists(ack_path, ec) && fs::file_size(ack_path, ec) > 0) break;
      ::usleep(1000);
    }
    ::usleep(static_cast<useconds_t>(rng() % 20000));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus))
        << "child exited with " << WEXITSTATUS(wstatus)
        << " instead of being killed";

    uint64_t last_acked = 0;
    {
      std::ifstream ack(ack_path);
      std::string line;
      while (std::getline(ack, line)) {
        if (!line.empty()) last_acked = std::stoull(line);
      }
    }
    ASSERT_GT(last_acked, 0u) << "child never acknowledged a batch";

    auto mgr = Open(dir.string());
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    Signature recovered = Sig((*mgr)->db());
    EXPECT_GE(recovered.epoch, last_acked)
        << "round " << round << ": an acknowledged batch vanished";

    // Replay determinism: the recovered state equals re-ingesting the same
    // prefix into a fresh database.
    testutil::MiniDb fresh = BuildMiniSales();
    const uint64_t base = (*fresh.db->Find("SALES"))->facts().epoch();
    for (uint64_t i = 0; i < recovered.epoch - base; ++i) {
      IngestOptions options;
      Ingestor ingestor(fresh.db.get(), nullptr, options);
      auto stats = ingestor.IngestText("SALES",
                                       BatchText(static_cast<int>(i)));
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    EXPECT_TRUE(Sig(fresh.db.get()) == recovered)
        << "round " << round << " diverged from the reference prefix";
  }
}

}  // namespace
}  // namespace assess
