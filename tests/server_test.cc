// Loopback integration tests for assessd: remote results bit-identical to
// the in-process session, typed errors that never cost the connection,
// >= 8 concurrent clients over one shared cache, admission control,
// per-request timeouts, protocol robustness against malformed traffic, and
// graceful drain. Also the TSan target for the shared-cache / worker-pool
// paths (see .github/workflows/ci.yml).

#include "server/assessd.h"

#include <sys/socket.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "assess/session.h"
#include "assess/wire_format.h"
#include "client/assess_client.h"
#include "common/crc32c.h"
#include "server/protocol.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

// Mixed workload over the MiniSales database: one statement per benchmark
// shape the planner distinguishes (sibling/POP, constant/NP, past, roll-up).
const char* kSibling =
    "with SALES for country = 'Italy' by product, country assess quantity "
    "against country = 'France' labels quartiles";
const char* kConstant =
    "with SALES by month assess sales against 10 labels quartiles";
const char* kPast =
    "with SALES for month = '1997-07' by month, store assess sales "
    "against past 2 labels quartiles";
const char* kRollup = "with SALES by month assess sales labels quartiles";

std::vector<std::string> MixedStatements() {
  return {kSibling, kConstant, kPast, kRollup};
}

/// Everything except timings must match bit-for-bit between a remote and an
/// in-process execution of the same statement (timings are measured, so
/// they legitimately differ run to run).
void ExpectSameComputation(const AssessResult& expected,
                           const AssessResult& actual) {
  EXPECT_EQ(expected.plan, actual.plan);
  EXPECT_EQ(expected.measure, actual.measure);
  EXPECT_EQ(expected.benchmark_measure, actual.benchmark_measure);
  EXPECT_EQ(expected.comparison_measure, actual.comparison_measure);
  EXPECT_EQ(expected.sql, actual.sql);
  const Cube& lhs = expected.cube;
  const Cube& rhs = actual.cube;
  ASSERT_EQ(lhs.level_count(), rhs.level_count());
  ASSERT_EQ(lhs.measure_count(), rhs.measure_count());
  ASSERT_EQ(lhs.NumRows(), rhs.NumRows());
  for (int l = 0; l < lhs.level_count(); ++l) {
    EXPECT_EQ(lhs.level(l).name(), rhs.level(l).name());
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      ASSERT_EQ(lhs.CoordName(r, l), rhs.CoordName(r, l))
          << "row " << r << " level " << l;
    }
  }
  for (int m = 0; m < lhs.measure_count(); ++m) {
    EXPECT_EQ(lhs.measure_name(m), rhs.measure_name(m));
    for (int64_t r = 0; r < lhs.NumRows(); ++r) {
      double x = lhs.MeasureAt(r, m), y = rhs.MeasureAt(r, m);
      ASSERT_EQ(std::isnan(x), std::isnan(y));
      if (!std::isnan(x)) {
        ASSERT_EQ(x, y) << "row " << r << " measure " << m;
      }
    }
  }
  EXPECT_EQ(lhs.labels(), rhs.labels());
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : mini_(BuildMiniSales()) {}

  /// Starts a server on an ephemeral loopback port.
  std::unique_ptr<AssessServer> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<AssessServer>(mini_.db.get(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  AssessClient ConnectOrDie(const AssessServer& server) {
    auto client = AssessClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  testutil::MiniDb mini_;
};

TEST_F(ServerTest, StartPingStop) {
  auto server = StartServer();
  ASSERT_GT(server->port(), 0);
  AssessClient client = ConnectOrDie(*server);
  EXPECT_TRUE(client.Ping().ok());
  server->Stop();
  // Stop is idempotent; a stopped server refuses new connections.
  server->Stop();
  auto late = AssessClient::Connect("127.0.0.1", server->port());
  if (late.ok()) {
    EXPECT_FALSE(late->Ping().ok());
  }
}

TEST_F(ServerTest, RemoteResultsMatchInProcessSession) {
  auto server = StartServer();
  AssessClient client = ConnectOrDie(*server);
  AssessSession local(mini_.db.get());
  for (const std::string& statement : MixedStatements()) {
    auto expected = local.Query(statement);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto remote = client.Query(statement);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ExpectSameComputation(*expected, *remote);
    // Remote timings are real measurements from the server.
    EXPECT_GE(remote->timings.Total(), 0.0);
  }
}

TEST_F(ServerTest, ErrorsTravelAsTypedCodesAndKeepTheConnection) {
  auto server = StartServer();
  AssessClient client = ConnectOrDie(*server);

  auto syntax = client.Query("select * from sales");
  ASSERT_FALSE(syntax.ok());
  EXPECT_EQ(syntax.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(syntax.status().message().empty());

  auto unknown = client.Query(
      "with NOPE by month assess sales against 10 labels quartiles");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // The same connection keeps serving after both errors.
  ASSERT_TRUE(client.connected());
  auto ok = client.Query(kConstant);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ServerTest, EightConcurrentClientsBitIdenticalResults) {
  constexpr int kClients = 8;
  constexpr int kRoundsPerClient = 6;
  auto server = StartServer();

  // Expected results computed in-process, once, up front.
  AssessSession local(mini_.db.get());
  std::vector<std::string> statements = MixedStatements();
  std::vector<AssessResult> expected;
  for (const std::string& statement : statements) {
    auto r = local.Query(statement);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = AssessClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        // Different clients walk the workload with different phases, so at
        // any instant a mix of statements is in flight.
        size_t pick = static_cast<size_t>(c + round) % statements.size();
        auto remote = client->Query(statements[pick]);
        if (!remote.ok()) {
          ++failures;
          continue;
        }
        ExpectSameComputation(expected[pick], *remote);
        ++completed;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), kClients * kRoundsPerClient);

  // All connections pooled one cache: with 8 clients x 6 rounds over 4
  // distinct statements, most executions must have been cache hits.
  AssessClient probe = ConnectOrDie(*server);
  auto stats = probe.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->ok_responses, static_cast<uint64_t>(kClients *
                                                       kRoundsPerClient));
  EXPECT_GT(stats->cache_lookups, 0u);
  EXPECT_GT(stats->cache_exact_hits + stats->cache_subsumption_hits, 0u);
}

TEST_F(ServerTest, StatsReportLoadLatencyAndCache) {
  auto server = StartServer();
  AssessClient client = ConnectOrDie(*server);
  ASSERT_TRUE(client.Query(kSibling).ok());
  ASSERT_TRUE(client.Query(kSibling).ok());  // second run: exact cache hit
  ASSERT_FALSE(client.Query("nonsense").ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->total_requests, 3u);
  EXPECT_EQ(stats->ok_responses, 2u);
  EXPECT_EQ(stats->error_responses, 1u);
  EXPECT_EQ(stats->rejected_overload, 0u);
  EXPECT_EQ(stats->timeouts, 0u);
  EXPECT_EQ(stats->in_flight, 0u);
  EXPECT_EQ(stats->queued, 0u);
  EXPECT_GE(stats->worker_threads, 1u);
  EXPECT_GE(stats->connections, 1u);
  EXPECT_GT(stats->cache_lookups, 0u);
  EXPECT_GT(stats->cache_exact_hits, 0u);
  EXPECT_GT(stats->cache_hit_rate(), 0.0);
  // Three responses recorded; the window percentiles are ordered.
  EXPECT_GE(stats->p90_ms, stats->p50_ms);
  EXPECT_GE(stats->p99_ms, stats->p90_ms);
  EXPECT_GT(stats->p99_ms, 0.0);
  // The human rendering mentions the load numbers.
  EXPECT_NE(stats->ToString().find("hit rate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Protocol robustness: every abuse below must leave other connections
// serving. kHealthyAfterwards runs a full query on a separate, well-behaved
// connection after each abuse.
// ---------------------------------------------------------------------------

class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    auto fd = ConnectTo("127.0.0.1", port);
    fd_ = fd.ok() ? *fd : -1;
  }
  ~RawConnection() { CloseSocket(fd_); }

  bool ok() const { return fd_ >= 0; }

  void SendBytes(const void* data, size_t len) {
    (void)!::send(fd_, data, len, MSG_NOSIGNAL);
  }

  /// Reads one frame with a generous cap; returns its status.
  Status ReadOneFrame(Frame* frame) {
    return ReadFrame(fd_, size_t{64} << 20, frame);
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

TEST_F(ServerTest, MalformedTrafficLeavesServerServing) {
  auto server = StartServer();
  AssessClient healthy = ConnectOrDie(*server);

  auto expect_healthy = [&] {
    auto r = healthy.Query(kConstant);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  };

  {
    // Oversized length prefix: rejected with a typed error, then closed —
    // without the server ever allocating the claimed buffer.
    RawConnection bad(server->port());
    ASSERT_TRUE(bad.ok());
    uint32_t huge = 1u << 30;  // 1 GiB, way over the 16 MiB default
    char header[5];
    std::memcpy(header, &huge, 4);
    header[4] = 0x01;
    bad.SendBytes(header, 5);
    Frame response;
    Status read = bad.ReadOneFrame(&response);
    ASSERT_TRUE(read.ok()) << read.ToString();
    EXPECT_EQ(response.type, FrameType::kError);
    Status remote = Status::OK();
    ASSERT_TRUE(DeserializeStatus(response.payload, &remote).ok());
    EXPECT_EQ(remote.code(), StatusCode::kFrameTooLarge);
    // ...and the stream is closed afterwards.
    EXPECT_FALSE(bad.ReadOneFrame(&response).ok());
    expect_healthy();
  }
  {
    // Zero-length frame: unframable.
    RawConnection bad(server->port());
    ASSERT_TRUE(bad.ok());
    const char zeros[5] = {0, 0, 0, 0, 0};
    bad.SendBytes(zeros, 4);
    Frame response;
    Status read = bad.ReadOneFrame(&response);
    if (read.ok()) {
      EXPECT_EQ(response.type, FrameType::kError);
    }
    expect_healthy();
  }
  {
    // Truncated frame: a 100-byte announcement with 10 bytes delivered.
    RawConnection bad(server->port());
    ASSERT_TRUE(bad.ok());
    uint32_t length = 100;
    char buf[15];
    std::memcpy(buf, &length, 4);
    buf[4] = 0x01;
    std::memset(buf + 5, 'x', 10);
    bad.SendBytes(buf, 15);
    // Close mid-frame; the server must just drop the connection.
    expect_healthy();
  }
  {
    // Garbage bytes.
    RawConnection bad(server->port());
    ASSERT_TRUE(bad.ok());
    const char garbage[] = "\xde\xad\xbe\xef\xba\xad\xf0\x0d garbage";
    bad.SendBytes(garbage, sizeof(garbage));
    expect_healthy();
  }
  {
    // Mid-request disconnect: a valid query whose sender vanishes before
    // the response. The server executes, fails to write, and moves on.
    RawConnection bad(server->port());
    ASSERT_TRUE(bad.ok());
    std::string frame =
        EncodeFrame(FrameType::kQuery, EncodeQueryPayload(0, kConstant));
    bad.SendBytes(frame.data(), frame.size());
  }  // RawConnection closes here, likely before the response is ready
  expect_healthy();

  // Unknown frame type (well-formed otherwise: correct CRC trailer).
  {
    RawConnection bad(server->port());
    ASSERT_TRUE(bad.ok());
    std::string frame = EncodeFrame(static_cast<FrameType>(0x7F), "");
    bad.SendBytes(frame.data(), frame.size());
    Frame response;
    Status read = bad.ReadOneFrame(&response);
    if (read.ok()) {
      EXPECT_EQ(response.type, FrameType::kError);
    }
    expect_healthy();
  }

  // A frame whose CRC trailer does not match its bytes: typed
  // kCorruptFrame error, then the connection is closed.
  {
    RawConnection bad(server->port());
    ASSERT_TRUE(bad.ok());
    std::string frame =
        EncodeFrame(FrameType::kQuery, EncodeQueryPayload(0, kConstant));
    frame[frame.size() / 2] ^= 0x40;  // flip one covered bit
    bad.SendBytes(frame.data(), frame.size());
    Frame response;
    Status read = bad.ReadOneFrame(&response);
    ASSERT_TRUE(read.ok()) << read.ToString();
    EXPECT_EQ(response.type, FrameType::kError);
    Status remote = Status::OK();
    ASSERT_TRUE(DeserializeStatus(response.payload, &remote).ok());
    EXPECT_EQ(remote.code(), StatusCode::kCorruptFrame);
    EXPECT_FALSE(bad.ReadOneFrame(&response).ok());
    expect_healthy();
  }
}

TEST_F(ServerTest, OverloadedServerRejectsWithTypedError) {
  ServerOptions options;
  options.worker_threads = 1;
  options.max_queue = 1;
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };
  auto server = StartServer(options);

  // 6 concurrent one-query clients against 1 worker + 1 queue slot: at
  // most 2 can be admitted per 150 ms window, so some must be rejected.
  // Loop a few rounds to make the race a non-event even on slow machines.
  std::atomic<int> succeeded{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  for (int round = 0; round < 5 && (succeeded.load() == 0 ||
                                    overloaded.load() == 0);
       ++round) {
    std::vector<std::thread> clients;
    for (int c = 0; c < 6; ++c) {
      clients.emplace_back([&] {
        auto client = AssessClient::Connect("127.0.0.1", server->port());
        if (!client.ok()) {
          ++other;
          return;
        }
        auto r = client->Query(kConstant);
        if (r.ok()) {
          ++succeeded;
        } else if (r.status().code() == StatusCode::kUnavailable &&
                   r.status().message().find("overloaded") !=
                       std::string::npos) {
          ++overloaded;
        } else {
          ++other;
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  EXPECT_GT(succeeded.load(), 0);
  EXPECT_GT(overloaded.load(), 0);
  EXPECT_EQ(other.load(), 0);

  // Rejection is backpressure, not failure: an idle server serves again.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  AssessClient after = ConnectOrDie(*server);
  EXPECT_TRUE(after.Query(kConstant).ok());
  auto stats = after.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->rejected_overload,
            static_cast<uint64_t>(overloaded.load()));
}

TEST_F(ServerTest, SlowRequestsHitTheWallClockTimeout) {
  ServerOptions options;
  options.request_timeout_ms = 50;
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  };
  auto server = StartServer(options);
  AssessClient client = ConnectOrDie(*server);
  auto r = client.Query(kConstant);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->timeouts, 1u);
}

TEST_F(ServerTest, ConnectionCapGreetsExtraClientsWithUnavailable) {
  ServerOptions options;
  options.max_connections = 1;
  auto server = StartServer(options);
  AssessClient first = ConnectOrDie(*server);
  ASSERT_TRUE(first.Ping().ok());
  auto second = AssessClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(second.ok());  // TCP accepts, then the server says no
  Status st = second->Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // The first client is unaffected.
  EXPECT_TRUE(first.Query(kConstant).ok());
}

TEST_F(ServerTest, StopDrainsInFlightRequests) {
  ServerOptions options;
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };
  auto server = StartServer(options);

  std::atomic<bool> got_result{false};
  std::atomic<bool> query_sent{false};
  std::thread slow_client([&] {
    auto client = AssessClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    query_sent.store(true);
    auto r = client->Query(kConstant);
    // Graceful drain: the in-flight request completes with its result.
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    got_result.store(r.ok());
  });

  while (!query_sent.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Give the query time to reach the worker, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server->Stop();
  slow_client.join();
  EXPECT_TRUE(got_result.load());
}

// ---------------------------------------------------------------------------
// Stats wire v5 + observability surfaces.
// ---------------------------------------------------------------------------

TEST(ServerStatsWire, V7RoundTripsEveryField) {
  ServerStats stats;
  stats.total_requests = 101;
  stats.ok_responses = 90;
  stats.error_responses = 11;
  stats.rejected_overload = 3;
  stats.timeouts = 2;
  stats.queued = 5;
  stats.in_flight = 4;
  stats.connections = 7;
  stats.worker_threads = 8;
  stats.p50_ms = 1.5;
  stats.p90_ms = 9.25;
  stats.p99_ms = 42.0;
  stats.cache_lookups = 1000;
  stats.cache_exact_hits = 600;
  stats.cache_subsumption_hits = 100;
  stats.cache_misses = 300;
  stats.cache_entries = 12;
  stats.cache_bytes = 1 << 20;
  stats.pool_workers = 4;
  stats.pool_queue_depth = 1;
  stats.morsels_scanned = 5000;
  stats.morsels_skipped = 2000;
  stats.latency_samples = 101;
  stats.slow_queries = 6;
  stats.traces_sampled = 50;
  stats.trace_spans = 900;
  stats.ingest_rows = 4096;
  stats.ingest_batches = 3;
  stats.cache_epoch_invalidations = 17;
  stats.wal_appends = 33;
  stats.wal_fsyncs = 9;
  stats.wal_bytes = 8192;
  stats.checkpoints = 2;
  stats.recovery_replayed_records = 21;
  stats.recovery_truncated_bytes = 13;
  stats.mqo_batches = 19;
  stats.mqo_queries_batched = 77;
  stats.mqo_shared_scans = 23;
  stats.mqo_queries_piggybacked = 31;
  stats.workload_fingerprints = 41;
  stats.workload_evictions = 5;
  stats.http_requests = 67;
  stats.trace_ids_received = 89;

  std::string wire = stats.Serialize();
  ASSERT_GE(wire.size(), 2u);
  EXPECT_EQ(wire[0], 'T');
  EXPECT_EQ(wire[1], 0x07);

  auto decoded = ServerStats::Deserialize(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->total_requests, stats.total_requests);
  EXPECT_EQ(decoded->worker_threads, stats.worker_threads);
  EXPECT_EQ(decoded->p50_ms, stats.p50_ms);
  EXPECT_EQ(decoded->p99_ms, stats.p99_ms);
  EXPECT_EQ(decoded->cache_bytes, stats.cache_bytes);
  EXPECT_EQ(decoded->morsels_skipped, stats.morsels_skipped);
  EXPECT_EQ(decoded->latency_samples, stats.latency_samples);
  EXPECT_EQ(decoded->slow_queries, stats.slow_queries);
  EXPECT_EQ(decoded->traces_sampled, stats.traces_sampled);
  EXPECT_EQ(decoded->trace_spans, stats.trace_spans);
  EXPECT_EQ(decoded->ingest_rows, stats.ingest_rows);
  EXPECT_EQ(decoded->ingest_batches, stats.ingest_batches);
  EXPECT_EQ(decoded->cache_epoch_invalidations,
            stats.cache_epoch_invalidations);
  EXPECT_EQ(decoded->wal_appends, stats.wal_appends);
  EXPECT_EQ(decoded->wal_fsyncs, stats.wal_fsyncs);
  EXPECT_EQ(decoded->wal_bytes, stats.wal_bytes);
  EXPECT_EQ(decoded->checkpoints, stats.checkpoints);
  EXPECT_EQ(decoded->recovery_replayed_records,
            stats.recovery_replayed_records);
  EXPECT_EQ(decoded->recovery_truncated_bytes,
            stats.recovery_truncated_bytes);
  EXPECT_EQ(decoded->mqo_batches, stats.mqo_batches);
  EXPECT_EQ(decoded->mqo_queries_batched, stats.mqo_queries_batched);
  EXPECT_EQ(decoded->mqo_shared_scans, stats.mqo_shared_scans);
  EXPECT_EQ(decoded->mqo_queries_piggybacked, stats.mqo_queries_piggybacked);
  EXPECT_EQ(decoded->workload_fingerprints, stats.workload_fingerprints);
  EXPECT_EQ(decoded->workload_evictions, stats.workload_evictions);
  EXPECT_EQ(decoded->http_requests, stats.http_requests);
  EXPECT_EQ(decoded->trace_ids_received, stats.trace_ids_received);
  // The human rendering carries the new counters too.
  EXPECT_NE(stats.ToString().find("slow queries"), std::string::npos);
  EXPECT_NE(stats.ToString().find("wal:"), std::string::npos);
  EXPECT_NE(stats.ToString().find("mqo:"), std::string::npos);
  EXPECT_NE(stats.ToString().find("workload:"), std::string::npos);

  // Trailing garbage is still rejected.
  EXPECT_FALSE(ServerStats::Deserialize(wire + "x").ok());
}

TEST(ServerStatsWire, AcceptsV6PayloadsWithZeroWorkloadFields) {
  // A v6 payload from a pre-workload-intelligence peer: the workload/http
  // counter group is simply absent and decodes as zeros.
  std::string v6;
  v6.push_back('T');
  v6.push_back(0x06);
  v6.append(9, '\0');   // request/load varints
  v6.append(24, '\0');  // p50/p90/p99 doubles
  v6.append(6, '\0');   // cache varints
  v6.append(4, '\0');   // pool varints
  v6.append(4, '\0');   // v3 observability varints
  v6.append(3, '\0');   // v4 ingest varints
  v6.append(6, '\0');   // v5 durability varints
  v6.append(4, '\0');   // v6 mqo varints
  auto decoded = ServerStats::Deserialize(v6);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->workload_fingerprints, 0u);
  EXPECT_EQ(decoded->workload_evictions, 0u);
  EXPECT_EQ(decoded->http_requests, 0u);
  EXPECT_EQ(decoded->trace_ids_received, 0u);
  EXPECT_FALSE(ServerStats::Deserialize(v6 + '\0').ok());
}

TEST(ServerStatsWire, AcceptsV5PayloadsWithZeroMqoFields) {
  // A v5 payload from a pre-MQO peer: the MQO counter group is simply
  // absent and decodes as zeros.
  std::string v5;
  v5.push_back('T');
  v5.push_back(0x05);
  v5.append(9, '\0');   // request/load varints
  v5.append(24, '\0');  // p50/p90/p99 doubles
  v5.append(6, '\0');   // cache varints
  v5.append(4, '\0');   // pool varints
  v5.append(4, '\0');   // v3 observability varints
  v5.append(3, '\0');   // v4 ingest varints
  v5.append(6, '\0');   // v5 durability varints
  auto decoded = ServerStats::Deserialize(v5);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->mqo_batches, 0u);
  EXPECT_EQ(decoded->mqo_queries_batched, 0u);
  EXPECT_EQ(decoded->mqo_shared_scans, 0u);
  EXPECT_EQ(decoded->mqo_queries_piggybacked, 0u);
  EXPECT_FALSE(ServerStats::Deserialize(v5 + '\0').ok());
}

TEST(ServerStatsWire, AcceptsV4PayloadsWithZeroWalFields) {
  // A v4 payload from a pre-durability peer: the WAL counter group is
  // simply absent and decodes as zeros.
  std::string v4;
  v4.push_back('T');
  v4.push_back(0x04);
  v4.append(9, '\0');   // request/load varints
  v4.append(24, '\0');  // p50/p90/p99 doubles
  v4.append(6, '\0');   // cache varints
  v4.append(4, '\0');   // pool varints
  v4.append(4, '\0');   // v3 observability varints
  v4.append(3, '\0');   // v4 ingest varints
  auto decoded = ServerStats::Deserialize(v4);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->wal_appends, 0u);
  EXPECT_EQ(decoded->checkpoints, 0u);
  EXPECT_EQ(decoded->recovery_replayed_records, 0u);
  EXPECT_FALSE(ServerStats::Deserialize(v4 + '\0').ok());
}

TEST(ServerStatsWire, AcceptsV2PayloadsWithZeroObservabilityFields) {
  // A hand-crafted v2 payload from a pre-observability peer: magic, version
  // 0x02, 9 zero varints, 3 zero doubles, 6 cache varints, 4 pool varints.
  std::string v2;
  v2.push_back('T');
  v2.push_back(0x02);
  v2.append(9, '\0');   // request/load varints
  v2.append(24, '\0');  // p50/p90/p99 doubles
  v2.append(6, '\0');   // cache varints
  v2.append(4, '\0');   // pool varints
  auto decoded = ServerStats::Deserialize(v2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->latency_samples, 0u);
  EXPECT_EQ(decoded->slow_queries, 0u);
  EXPECT_EQ(decoded->traces_sampled, 0u);
  EXPECT_EQ(decoded->trace_spans, 0u);
  // v2 length checks still hold: trailing bytes stay an error.
  EXPECT_FALSE(ServerStats::Deserialize(v2 + '\0').ok());
  // Unknown versions are rejected outright.
  std::string v9 = v2;
  v9[1] = 0x09;
  EXPECT_FALSE(ServerStats::Deserialize(v9).ok());
}

// ---------------------------------------------------------------------------
// Trace-id frame extension (kFrameTraceIdFlag).
// ---------------------------------------------------------------------------

/// Pushes `bytes` through a socketpair and decodes one frame off the
/// other end, exactly as a peer would.
Status DecodeFrameBytes(const std::string& bytes, Frame* frame) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_EQ(::send(fds[0], bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  ::shutdown(fds[0], SHUT_WR);
  Status read = ReadFrame(fds[1], size_t{16} << 20, frame);
  CloseSocket(fds[0]);
  CloseSocket(fds[1]);
  return read;
}

TEST(FrameTraceId, RoundTripsThroughEncodeAndDecode) {
  const uint64_t id = 0x0123456789abcdefULL;
  std::string bytes = EncodeFrame(FrameType::kQuery, "payload", id);
  Frame frame;
  ASSERT_TRUE(DecodeFrameBytes(bytes, &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.trace_id, id);
  EXPECT_EQ(frame.payload, "payload");
}

TEST(FrameTraceId, ZeroIdKeepsThePreTraceWireShape) {
  // trace_id 0 must encode byte-identically to the pre-trace protocol, so
  // a new client with tracing off interoperates with an old server.
  EXPECT_EQ(EncodeFrame(FrameType::kQuery, "payload", 0),
            EncodeFrame(FrameType::kQuery, "payload"));
  Frame frame;
  ASSERT_TRUE(
      DecodeFrameBytes(EncodeFrame(FrameType::kPing, ""), &frame).ok());
  EXPECT_EQ(frame.trace_id, 0u);
}

TEST(FrameTraceId, OldDecoderRejectsFlaggedFrameAsUnknownType) {
  // An old peer sees type 0x81 (kQuery | flag), which IsKnownFrameType
  // rejects — versioning by construction, no silent misparse. A new
  // decoder applies the same rule to a flagged *unknown* base type.
  std::string bytes =
      EncodeFrame(static_cast<FrameType>(0x7F | kFrameTraceIdFlag), "x");
  Frame frame;
  Status read = DecodeFrameBytes(bytes, &frame);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.message().find("unknown frame type"), std::string::npos);
}

TEST(FrameTraceId, FlaggedFrameTooShortForItsIdIsRejected) {
  // Hand-build a well-formed (correct length, correct CRC) flagged frame
  // whose payload is shorter than the 8-byte id it promises.
  std::string body;
  body.push_back(static_cast<char>(static_cast<uint8_t>(FrameType::kQuery) |
                                   kFrameTraceIdFlag));
  body += "abc";  // < 8 bytes of id
  std::string bytes;
  const uint32_t length = static_cast<uint32_t>(body.size());
  bytes.append(reinterpret_cast<const char*>(&length), 4);
  bytes += body;
  const uint32_t crc = Crc32c(body);
  bytes.append(reinterpret_cast<const char*>(&crc), 4);
  Frame frame;
  Status read = DecodeFrameBytes(bytes, &frame);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.message().find("traced frame"), std::string::npos);
}

TEST_F(ServerTest, MetricsFrameReturnsPrometheusExposition) {
  auto server = StartServer();
  AssessClient client = ConnectOrDie(*server);
  ASSERT_TRUE(client.Query(kConstant).ok());

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // Per-server series: the latency histogram plus the request counters.
  EXPECT_NE(metrics->find("assessd_request_latency_ms_bucket"),
            std::string::npos);
  EXPECT_NE(metrics->find("assessd_request_latency_ms_count"),
            std::string::npos);
  EXPECT_NE(metrics->find("assessd_requests_total 1"), std::string::npos);
  // Process-registry series fed by the engine layers.
  EXPECT_NE(metrics->find("assess_morsels_scanned_total"), std::string::npos);
  // kMetrics is answered inline by the reader (no latency sample), so only
  // the query landed in the histogram.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->latency_samples, 1u);
}

TEST_F(ServerTest, RemoteExplainAnalyzeRendersSpans) {
  auto server = StartServer();
  AssessClient client = ConnectOrDie(*server);
  auto text = client.ExplainAnalyze(kRollup);
  if (!kTracingCompiledIn) {
    ASSERT_FALSE(text.ok());
    EXPECT_EQ(text.status().code(), StatusCode::kNotSupported);
    return;
  }
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("span tree:"), std::string::npos);
  EXPECT_NE(text->find("Figure 4 phases:"), std::string::npos);
  EXPECT_NE(text->find("query"), std::string::npos);
  // Each EXPLAIN ANALYZE re-executes (never deduplicated); both calls
  // succeed and the server counts both traces.
  ASSERT_TRUE(client.ExplainAnalyze(kRollup).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->traces_sampled, 2u);
}

TEST_F(ServerTest, SlowQueryLogCountsTracedQueries) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "needs ASSESS_TRACING=ON";
  ServerOptions options;
  options.slow_query_ms = 0;  // every traced query counts as slow
  auto server = StartServer(options);
  AssessClient client = ConnectOrDie(*server);
  ASSERT_TRUE(client.Query(kConstant).ok());
  ASSERT_TRUE(client.Query(kSibling).ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->traces_sampled, 2u);
  EXPECT_EQ(stats->slow_queries, 2u);
  EXPECT_GT(stats->trace_spans, 0u);
}

TEST_F(ServerTest, TraceSampleZeroTracesNothing) {
  ServerOptions options;
  options.slow_query_ms = 0;
  options.trace_sample = 0.0;
  auto server = StartServer(options);
  AssessClient client = ConnectOrDie(*server);
  ASSERT_TRUE(client.Query(kConstant).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->traces_sampled, 0u);
  EXPECT_EQ(stats->slow_queries, 0u);
}

}  // namespace
}  // namespace assess
