#include "assess/suggest.h"

#include <gtest/gtest.h>

#include "assess/parser.h"
#include "assess/session.h"
#include "test_util.h"

namespace assess {
namespace {

using ::assess::testutil::BuildMiniSales;

class SuggestTest : public ::testing::Test {
 protected:
  SuggestTest()
      : mini_(BuildMiniSales()),
        functions_(FunctionRegistry::Default()),
        labelings_(LabelingRegistry::Default()) {}

  std::vector<Suggestion> Suggest(const std::string& text) {
    auto partial = ParsePartialAssessStatement(text);
    EXPECT_TRUE(partial.ok()) << partial.status().ToString();
    auto suggestions =
        SuggestCompletions(*partial, *mini_.db, functions_, labelings_);
    EXPECT_TRUE(suggestions.ok()) << suggestions.status().ToString();
    return std::move(suggestions).value();
  }

  testutil::MiniDb mini_;
  FunctionRegistry functions_;
  LabelingRegistry labelings_;
};

TEST(PartialParserTest, LabelsClauseMayBeMissing) {
  auto partial = ParsePartialAssessStatement(
      "with SALES for country = 'Italy' by product, country assess quantity");
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->labels.named, "");
  EXPECT_FALSE(partial->labels.is_inline);
  // The strict parser still requires it.
  EXPECT_FALSE(ParseAssessStatement(
                   "with SALES by month assess quantity")
                   .ok());
}

TEST(PartialParserTest, OtherClausesStillValidated) {
  EXPECT_FALSE(ParsePartialAssessStatement("with SALES assess x").ok());
}

TEST_F(SuggestTest, SuggestsSiblingForSlicedLevel) {
  auto suggestions = Suggest(
      "with SALES for country = 'Italy' by product, country assess quantity");
  ASSERT_FALSE(suggestions.empty());
  // The only sibling in the fixture is France; it outranks the fallback.
  EXPECT_EQ(suggestions[0].statement.against.type, BenchmarkType::kSibling);
  EXPECT_EQ(suggestions[0].statement.against.sibling_member, "France");
  EXPECT_NE(suggestions[0].rationale.find("sibling"), std::string::npos);
  // Completions are fully runnable statements.
  AssessSession session(mini_.db.get());
  auto result = session.Query(suggestions[0].statement.ToString());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->cube.NumRows(), 0);
}

TEST_F(SuggestTest, SuggestsPastForTemporalSlice) {
  auto suggestions = Suggest(
      "with SALES for month = '1997-07' by month, store assess sales");
  bool has_past = false;
  for (const Suggestion& s : suggestions) {
    if (s.statement.against.type == BenchmarkType::kPast) {
      has_past = true;
      EXPECT_GE(s.statement.against.past_k, 1);
      AssessSession session(mini_.db.get());
      auto result = session.Query(s.statement.ToString());
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
  }
  EXPECT_TRUE(has_past);
}

TEST_F(SuggestTest, SuggestsAncestorForFinerSlice) {
  auto suggestions = Suggest(
      "with SALES for product = 'Apple' by product, country assess quantity");
  bool has_ancestor = false;
  for (const Suggestion& s : suggestions) {
    if (s.statement.against.type == BenchmarkType::kAncestor) {
      has_ancestor = true;
      EXPECT_EQ(s.statement.against.ancestor_level, "type");
    }
  }
  EXPECT_TRUE(has_ancestor);
}

TEST_F(SuggestTest, FallbackForUnslicedStatements) {
  auto suggestions = Suggest("with SALES by month assess sales");
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].statement.against.type, BenchmarkType::kNone);
  // The fallback gets a distribution labeling, not ratio bands.
  EXPECT_EQ(suggestions[0].statement.labels.named, "quartiles");
}

TEST_F(SuggestTest, CompletesOnlyMissingClauses) {
  // against given, labels missing: only using/labels are filled in.
  auto suggestions = Suggest(
      "with SALES for country = 'Italy' by product, country assess quantity "
      "against country = 'France'");
  ASSERT_EQ(suggestions.size(), 1u);
  const AssessStatement& stmt = suggestions[0].statement;
  EXPECT_EQ(stmt.against.sibling_member, "France");
  ASSERT_TRUE(stmt.using_expr.has_value());
  EXPECT_EQ(stmt.using_expr->ToString(),
            "ratio(quantity, benchmark.quantity)");
  EXPECT_TRUE(stmt.labels.is_inline);  // ratio bands
  EXPECT_EQ(stmt.labels.ranges[1].label, "fine");
}

TEST_F(SuggestTest, RespectsMaxSuggestions) {
  auto partial = ParsePartialAssessStatement(
      "with SALES for country = 'Italy', month = '1997-07' "
      "by product, country, month assess quantity");
  ASSERT_TRUE(partial.ok());
  auto suggestions =
      SuggestCompletions(*partial, *mini_.db, functions_, labelings_, 2);
  ASSERT_TRUE(suggestions.ok());
  EXPECT_LE(suggestions->size(), 2u);
}

TEST_F(SuggestTest, SuggestionsAreRankedByInterest) {
  auto suggestions = Suggest(
      "with SALES for country = 'Italy' by product, country assess quantity");
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].interest, suggestions[i].interest);
  }
}

TEST_F(SuggestTest, UnknownCubeFails) {
  auto partial =
      ParsePartialAssessStatement("with GHOST by month assess sales");
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(
      SuggestCompletions(*partial, *mini_.db, functions_, labelings_).ok());
}

}  // namespace
}  // namespace assess
