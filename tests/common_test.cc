#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/value.h"

namespace assess {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::NotFound("cube X").WithContext("while planning");
  EXPECT_EQ(st.message(), "while planning: cube X");
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OK().WithContext("ignored").ToString(), "OK");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoublePositive(int v) {
  ASSESS_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = DoublePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad = DoublePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Result<int>(7).ValueOr(9), 7);
  EXPECT_EQ(Result<int>(Status::NotFound("x")).ValueOr(9), 9);
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StrUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("ASSESS", "assess"));
  EXPECT_FALSE(EqualsIgnoreCase("assess", "asses"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\n\tx"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("benchmark.quantity", "benchmark."));
  EXPECT_FALSE(StartsWith("bench", "benchmark"));
}

TEST(FormatNumberTest, Integers) {
  EXPECT_EQ(FormatNumber(0), "0");
  EXPECT_EQ(FormatNumber(1000), "1000");
  EXPECT_EQ(FormatNumber(-42), "-42");
}

TEST(FormatNumberTest, Decimals) {
  EXPECT_EQ(FormatNumber(0.9), "0.9");
  EXPECT_EQ(FormatNumber(-0.25), "-0.25");
}

TEST(FormatNumberTest, Specials) {
  EXPECT_EQ(FormatNumber(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatNumber(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatNumber(std::nan("")), "nan");
}

class FormatNumberRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(FormatNumberRoundTrip, ParsesBackExactly) {
  double v = GetParam();
  EXPECT_EQ(std::stod(FormatNumber(v)), v);
}

INSTANTIATE_TEST_SUITE_P(Values, FormatNumberRoundTrip,
                         ::testing::Values(0.1, 1.0 / 3.0, 1e-17, 6.02e23,
                                           -273.15, 0.30000000000000004,
                                           12345.6789, 2.2250738585072014e-308));

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, SkewedInBoundsAndSkewed) {
  Rng rng(7);
  int64_t low_half = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.Skewed(100);
    EXPECT_LT(v, 100u);
    if (v < 50) ++low_half;
  }
  // The squared-uniform draw lands in the lower half ~sqrt(1/2) of the time.
  EXPECT_GT(low_half, kDraws / 2);
}

TEST(ValueTest, NumberAndString) {
  Value n(3.5);
  EXPECT_TRUE(n.is_number());
  EXPECT_EQ(n.number(), 3.5);
  EXPECT_EQ(n.ToString(), "3.5");
  Value s(std::string("Italy"));
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.text(), "Italy");
  EXPECT_EQ(s.ToString(), "'Italy'");
  EXPECT_EQ(Value(1.0), Value(1.0));
  EXPECT_FALSE(Value(1.0) == Value(std::string("1")));
}

TEST(StopwatchTest, Monotonic) {
  Stopwatch sw;
  double a = sw.ElapsedSeconds();
  double b = sw.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  sw.Restart();
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

TEST(Crc32cTest, KnownAnswers) {
  // RFC 3720 appendix B check value for the Castagnoli polynomial.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes (iSCSI test vector).
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposes) {
  std::string a = "assess queries for ";
  std::string b = "interactive analysis";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), b.size()), Crc32c(a + b));
  // Byte-at-a-time equals one-shot (exercises the slicing tail path).
  uint32_t crc = 0;
  for (char c : a) crc = Crc32cExtend(crc, &c, 1);
  EXPECT_EQ(crc, Crc32c(a));
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string payload = "with SALES by month assess sales labels quartiles";
  uint32_t clean = Crc32c(payload);
  for (size_t i = 0; i < payload.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      payload[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(payload), clean) << "byte " << i << " bit " << bit;
      payload[i] ^= static_cast<char>(1 << bit);
    }
  }
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

Status HitOnce(const char* name) {
  ASSESS_FAILPOINT(name);
  return Status::OK();
}

TEST_F(FailpointTest, UnarmedIsFree) {
  EXPECT_TRUE(HitOnce("never.armed").ok());
  EXPECT_EQ(FailpointRegistry::Instance().triggers("never.armed"), 0u);
}

TEST_F(FailpointTest, ArmedErrorFiresWithCodeAndMessage) {
  if (!kFailpointsCompiledIn) {
    FailpointSpec spec;
    EXPECT_EQ(FailpointRegistry::Instance().Arm("x", spec).code(),
              StatusCode::kNotSupported);
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry
                  .ArmFromString(
                      "test.point=error(timeout, simulated stall)")
                  .ok());
  Status hit = HitOnce("test.point");
  EXPECT_EQ(hit.code(), StatusCode::kTimeout);
  EXPECT_EQ(hit.message(), "simulated stall");
  EXPECT_EQ(registry.triggers("test.point"), 1u);
  EXPECT_NE(registry.Describe().find("test.point"), std::string::npos);
  EXPECT_TRUE(registry.Disarm("test.point"));
  EXPECT_TRUE(HitOnce("test.point").ok());
}

TEST_F(FailpointTest, BudgetLimitsTriggers) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromString("test.budget=error:budget=2").ok());
  EXPECT_FALSE(HitOnce("test.budget").ok());
  EXPECT_FALSE(HitOnce("test.budget").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(HitOnce("test.budget").ok()) << "budget not enforced";
  }
  EXPECT_EQ(registry.triggers("test.budget"), 2u);
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  auto& registry = FailpointRegistry::Instance();
  auto run = [&]() {
    EXPECT_TRUE(
        registry.ArmFromString("test.p=error:p=0.5:seed=42").ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(HitOnce("test.p").ok() ? '.' : 'X');
    }
    return pattern;
  };
  std::string first = run();
  std::string second = run();  // re-arming resets the stream
  EXPECT_EQ(first, second);
  // p=0.5 over 64 draws: both outcomes occur.
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FailpointTest, TriggeredFormSkipsSteps) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromString("test.skip=error:budget=1").ok());
  EXPECT_TRUE(ASSESS_FAILPOINT_TRIGGERED("test.skip"));
  EXPECT_FALSE(ASSESS_FAILPOINT_TRIGGERED("test.skip"));  // budget spent
}

TEST_F(FailpointTest, CorruptFlipsBytesPastOffset) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromString("test.corrupt=corrupt:seed=7").ok());
  std::string buf(64, 'a');
  std::string original = buf;
  ASSESS_FAILPOINT_CORRUPT("test.corrupt", &buf, 4);
  EXPECT_NE(buf, original);
  EXPECT_EQ(buf.substr(0, 4), original.substr(0, 4)) << "offset not honoured";
}

TEST_F(FailpointTest, SpecParserRejectsMalformedInput) {
  auto& registry = FailpointRegistry::Instance();
  for (const char* bad :
       {"nameonly", "=error", "x=", "x=explode", "x=error(nosuchcode)",
        "x=delay(abc)", "x=error:p=2", "x=error:budget=x", "x=error:tweak=1",
        "x=off(1)"}) {
    Status st = registry.ArmFromString(bad);
    EXPECT_FALSE(st.ok()) << "accepted '" << bad << "'";
    if (kFailpointsCompiledIn) {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << bad;
    }
  }
  // 'off' for an unknown point parses fine (disarming is idempotent).
  EXPECT_TRUE(registry.ArmFromString("x=off").ok());
}

}  // namespace
}  // namespace assess
