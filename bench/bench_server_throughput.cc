// Measures assessd end-to-end throughput over loopback TCP: for each
// (worker threads x concurrent clients) configuration a fresh server is
// started on an ephemeral port, each client thread replays the SSB workload
// round-robin, and the aggregate requests/second is reported together with
// the server's own latency percentiles and cache hit rate. Writes
// BENCH_server.json for the regression record. With the shared result cache
// on (the default), every configuration past the first requests per
// statement is served warm, so the numbers measure the protocol + server
// path rather than raw engine time.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/assess_client.h"
#include "server/assessd.h"
#include "server/protocol.h"

int main() {
  using namespace assess;
  using namespace assess::bench;

  double sf = DefaultBaseSf();
  auto db = BuildScale({"SSB", sf});
  std::vector<WorkloadStatement> workload = SsbWorkload();

  const int kWorkerSweep[] = {1, 2, 4};
  const int kClientSweep[] = {1, 4, 8};
  const int kRequestsPerClient = 30;

  struct ConfigResult {
    int workers = 0;
    int clients = 0;
    int requests = 0;
    double seconds = 0.0;
    double rps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double hit_rate = 0.0;
  };
  std::vector<ConfigResult> results;

  std::printf("assessd loopback throughput (SF %.3g, %d requests/client)\n\n",
              sf, kRequestsPerClient);
  std::printf("%8s %8s %9s %10s %10s %9s %9s\n", "workers", "clients",
              "requests", "wall(s)", "req/s", "p50(ms)", "hit rate");

  for (int workers : kWorkerSweep) {
    for (int clients : kClientSweep) {
      ServerOptions options;
      options.worker_threads = workers;
      AssessServer server(db.get(), options);
      Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.ToString().c_str());
        return 1;
      }

      // Warm the shared cache so every configuration measures the same
      // (cached) engine work and the sweep isolates server-side scaling.
      {
        auto warm = AssessClient::Connect("127.0.0.1", server.port());
        if (!warm.ok()) {
          std::fprintf(stderr, "connect failed: %s\n",
                       warm.status().ToString().c_str());
          return 1;
        }
        for (const WorkloadStatement& stmt : workload) {
          auto r = warm->Query(stmt.text);
          if (!r.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", stmt.name.c_str(),
                         r.status().ToString().c_str());
            return 1;
          }
        }
      }

      std::atomic<int> failures{0};
      Stopwatch watch;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          auto client = AssessClient::Connect("127.0.0.1", server.port());
          if (!client.ok()) {
            ++failures;
            return;
          }
          for (int r = 0; r < kRequestsPerClient; ++r) {
            const WorkloadStatement& stmt =
                workload[(c + r) % workload.size()];
            if (!client->Query(stmt.text).ok()) ++failures;
          }
        });
      }
      for (std::thread& t : threads) t.join();
      double seconds = watch.ElapsedSeconds();

      ServerStats stats = server.Snapshot();
      server.Stop();
      if (failures.load() > 0) {
        std::fprintf(stderr, "FAIL: %d request(s) failed at workers=%d "
                     "clients=%d\n", failures.load(), workers, clients);
        return 1;
      }

      ConfigResult row;
      row.workers = workers;
      row.clients = clients;
      row.requests = clients * kRequestsPerClient;
      row.seconds = seconds;
      row.rps = seconds > 0.0 ? row.requests / seconds : 0.0;
      row.p50_ms = stats.p50_ms;
      row.p99_ms = stats.p99_ms;
      row.hit_rate = stats.cache_hit_rate();
      results.push_back(row);
      std::printf("%8d %8d %9d %10.3f %10.1f %9.2f %8.1f%%\n", row.workers,
                  row.clients, row.requests, row.seconds, row.rps, row.p50_ms,
                  100.0 * row.hit_rate);
    }
  }

  std::FILE* json = std::fopen("BENCH_server.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"scale_factor\": %.6g,\n"
               "  \"requests_per_client\": %d,\n  \"configs\": [\n",
               sf, kRequestsPerClient);
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(json,
                 "    {\"workers\": %d, \"clients\": %d, \"requests\": %d, "
                 "\"seconds\": %.6f, \"requests_per_second\": %.2f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"cache_hit_rate\": %.4f}%s\n",
                 r.workers, r.clients, r.requests, r.seconds, r.rps, r.p50_ms,
                 r.p99_ms, r.hit_rate, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_server.json\n");
  return 0;
}
