// SIMD scan-kernel benchmark: what the vectorized fused kernels buy over
// (a) the pre-vectorization generic hash kernel and (b) the scalar mirror
// of the same fused design, on SSB fact scans at 1 thread.
//
//   1. Kernel micro-bench on the real SSB columns: the seed engine's
//      per-row hash-aggregate loop (FlatMap64 + per-row key construction)
//      against the fused dense kernel at every compiled-in tier. This is
//      the apples-to-apples number for the "fused kernels at 1 thread"
//      speedup target — same predicate, same grouping, same memory.
//   2. Engine-level queries (apex, selective, non-selective, wide
//      group-by) with the tier pinned via ForceSimdLevelForTest, so the
//      numbers include planning, lane-table construction and the morsel
//      loop. Checksums must be bit-identical across tiers — the bench
//      aborts if the determinism contract breaks.
//
// Writes BENCH_simd.json. Override reps with ASSESS_BENCH_REPS and scale
// with ASSESS_SSB_BASE_SF.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/task_pool.h"
#include "storage/flat_map64.h"
#include "storage/packed_column.h"
#include "storage/predicate.h"
#include "storage/scan_kernels.h"
#include "storage/star_query_engine.h"

namespace assess {
namespace {

using bench::RepsFromEnv;
using bench::Secs;

// The seed engine's inner loop, reproduced: per row a pass-flag lookup, a
// mixed-radix key, a FlatMap64 probe and the accumulate. What every scan
// paid before the dense fused kernels existed.
double RunGenericHashKernel(const std::vector<int32_t>& date_fk,
                            const std::vector<int32_t>& cust_fk,
                            const std::vector<uint8_t>& pass,
                            const std::vector<MemberId>& nation_of,
                            const std::vector<double>& revenue, int reps,
                            double* checksum) {
  const int64_t rows = static_cast<int64_t>(revenue.size());
  // Best-of-reps everywhere in this file: the box shares cores, and the
  // minimum is the standard noise-robust estimator of kernel cost.
  double seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    FlatMap64 map{1024};
    int32_t num_groups = 0;
    std::vector<double> acc;
    for (int64_t i = 0; i < rows; ++i) {
      const int32_t date = date_fk[i];
      if (!pass[date]) continue;
      const uint64_t key =
          1 + (static_cast<uint64_t>(nation_of[cust_fk[i]]) + 1);
      bool inserted = false;
      int32_t group = map.FindOrInsert(key, num_groups, &inserted);
      if (inserted) {
        ++num_groups;
        acc.push_back(0.0);
      }
      acc[group] += revenue[i];
    }
    seconds = std::min(seconds, sw.ElapsedSeconds());
    *checksum = 0;
    for (double v : acc) *checksum += v;
  }
  return seconds;
}

// The same scan through the fused kernel of `level`, morsel by morsel like
// the engine runs it.
double RunFusedKernel(SimdLevel level, const FusedScanArgs& args,
                      int64_t rows, int reps, double* checksum) {
  FusedScanFn kernel = GetFusedScanKernel(level);
  double seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    AggState state;
    state.out_coords.resize(args.groups.size());
    state.acc.resize(args.measures.size());
    state.cnt.resize(args.measures.size());
    for (int64_t begin = 0; begin < rows; begin += kMorselRows) {
      kernel(args, begin, std::min(rows, begin + kMorselRows), &state);
    }
    seconds = std::min(seconds, sw.ElapsedSeconds());
    *checksum = 0;
    for (double v : state.acc[0]) *checksum += v;
  }
  return seconds;
}

double TimeQuery(const StarQueryEngine& engine, const CubeQuery& query,
                 int reps, uint64_t* checksum) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    auto cube = engine.Execute(query);
    if (!cube.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   cube.status().ToString().c_str());
      std::exit(1);
    }
    best = std::min(best, sw.ElapsedSeconds());
    // Bit-exact checksum: XOR of all measure bit patterns. Tier-invariant
    // by the determinism contract; checked by main().
    uint64_t sum = 0;
    for (int m = 0; m < cube->measure_count(); ++m) {
      for (double v : cube->measure_column(m)) {
        uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        sum ^= bits;
      }
    }
    *checksum = sum;
  }
  return best;
}

}  // namespace
}  // namespace assess

int main() {
  using namespace assess;

  const int reps = RepsFromEnv(5);
  const double sf = BaseScaleFactorFromEnv(0.2);
  const int best = static_cast<int>(DetectCpuSimdLevel());

  SsbScalePoint point;
  point.name = "SSB-simd";
  point.scale_factor = sf;
  std::unique_ptr<StarDatabase> db = bench::BuildScale(point, false);
  const BoundCube* ssb = *db->Find("SSB");
  const FactTable& facts = ssb->facts();
  const int64_t rows = facts.NumRows();

  std::printf("simd scan bench: SF %.3g (%lld rows), best tier %s, %d reps\n\n",
              sf, static_cast<long long>(rows),
              SimdLevelName(static_cast<SimdLevel>(best)), reps);

  // -- 1. Kernel micro-bench ----------------------------------------------
  // Group by c_nation under year IN {1997, 1998}: the fused-kernel shape of
  // bench_parallel_scan, now against the real kernels.
  std::vector<Predicate> preds = {{0, 2, PredicateOp::kIn, {"1997", "1998"}}};
  auto pass_or = BuildDimensionRowFlags(ssb->dimension(0), preds);
  if (!pass_or.ok()) {
    std::fprintf(stderr, "flags failed: %s\n",
                 pass_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint8_t>& pass = *pass_or;
  const std::vector<MemberId>& nation_of = ssb->dimension(1).level_column(2);
  const uint32_t nations = static_cast<uint32_t>(
      ssb->schema().hierarchy(1).LevelCardinality(2));

  // Lane tables exactly as the engine builds them (radix 1, one group).
  std::vector<uint32_t> date_lane(ssb->dimension(0).NumRows(), 0u);
  for (size_t c = 0; c < date_lane.size(); ++c) {
    if (!pass[c]) date_lane[c] = kLaneReject;
  }
  std::vector<uint32_t> cust_lane(ssb->dimension(1).NumRows(), 0u);
  for (size_t c = 0; c < cust_lane.size(); ++c) {
    cust_lane[c] = static_cast<uint32_t>(nation_of[c]) + 1u;
  }
  const FactSnapshot snap = facts.SnapshotWithDerived();
  const PackedFactColumns& packed = snap.derived->packed;
  FusedScanArgs args;
  KernelColumn date_col;
  date_col.packed = &packed.dims[0];
  date_col.lane = date_lane.data();
  args.columns.push_back(date_col);
  KernelColumn cust_col;
  cust_col.packed = &packed.dims[1];
  cust_col.lane = cust_lane.data();
  args.columns.push_back(cust_col);
  args.groups.push_back(KernelGroup{1, nations + 1});
  args.measures.push_back(KernelMeasure{
      facts.measure_column(1).data(), AggOp::kSum});
  args.key_space = nations + 2;

  double generic_check = 0;
  const double generic_s = RunGenericHashKernel(
      facts.fk_column(0), facts.fk_column(1), pass, nation_of,
      facts.measure_column(1), reps, &generic_check);
  std::printf("kernel micro (year IN {1997,1998} by c_nation, 1 thread):\n");
  std::printf("  %-14s %ss\n", "generic-hash", Secs(generic_s).c_str());

  std::vector<double> tier_seconds(best + 1, 0.0);
  double scalar_check = 0;
  for (int level = 0; level <= best; ++level) {
    double check = 0;
    tier_seconds[level] = RunFusedKernel(static_cast<SimdLevel>(level), args,
                                         rows, reps, &check);
    // Fused tiers are bit-identical to each other by contract. The generic
    // loop groups across the whole scan while this harness re-seeds groups
    // per morsel (no merge step), so against it only a rounding-tolerance
    // comparison is meaningful.
    if (level == 0) {
      scalar_check = check;
      double diff = check > generic_check ? check - generic_check
                                          : generic_check - check;
      if (diff > 1e-6 * (1.0 + (generic_check < 0 ? -generic_check
                                                  : generic_check))) {
        std::fprintf(stderr, "kernel checksum mismatch vs generic: %f vs %f\n",
                     check, generic_check);
        return 1;
      }
    } else if (check != scalar_check) {
      std::fprintf(stderr, "kernel checksum mismatch at tier %s: %f vs %f\n",
                   SimdLevelName(static_cast<SimdLevel>(level)), check,
                   scalar_check);
      return 1;
    }
    std::printf("  fused-%-8s %ss  (%.2fx vs generic)\n",
                SimdLevelName(static_cast<SimdLevel>(level)),
                Secs(tier_seconds[level]).c_str(),
                generic_s / tier_seconds[level]);
  }

  // -- 2. Engine-level queries at each tier ---------------------------------
  struct QueryCase {
    const char* name;
    CubeQuery query;
  };
  auto make = [&](const std::vector<std::string>& by,
                  std::vector<Predicate> qpreds) {
    auto q = CubeQuery::Make(ssb->schema(), "SSB", by, std::move(qpreds),
                             {"revenue"});
    if (!q.ok()) {
      std::fprintf(stderr, "bad query: %s\n", q.status().ToString().c_str());
      std::exit(1);
    }
    return *q;
  };
  std::vector<QueryCase> cases;
  cases.push_back({"apex", make({}, {})});
  cases.push_back({"non_selective", make({"c_nation", "s_region"}, {})});
  cases.push_back(
      {"selective", make({"c_nation", "s_region"},
                         {{3, 3, PredicateOp::kEquals, {"ASIA"}},
                          {0, 2, PredicateOp::kIn, {"1997", "1998"}}})});
  cases.push_back({"by_brand", make({"brand"}, {})});

  struct EnginePoint {
    const char* query;
    int tier;
    double seconds;
  };
  std::vector<EnginePoint> engine_points;
  std::printf("\nengine queries (1 thread):\n");
  std::printf("  %-14s %-8s %10s %10s\n", "query", "tier", "seconds",
              "speedup");
  for (const QueryCase& qc : cases) {
    double scalar_s = 0;
    uint64_t want_check = 0;
    for (int level = 0; level <= best; ++level) {
      ForceSimdLevelForTest(level);
      EngineOptions options;
      options.use_views = false;
      options.use_result_cache = false;
      options.threads = 1;
      options.pool = std::make_shared<TaskPool>(1);
      StarQueryEngine engine(db.get(), options);
      uint64_t check = 0;
      double seconds = TimeQuery(engine, qc.query, reps, &check);
      if (level == 0) {
        scalar_s = seconds;
        want_check = check;
      } else if (check != want_check) {
        std::fprintf(stderr,
                     "engine checksum mismatch: query %s tier %s\n",
                     qc.name, SimdLevelName(static_cast<SimdLevel>(level)));
        return 1;
      }
      engine_points.push_back({qc.name, level, seconds});
      std::printf("  %-14s %-8s %ss %9.2fx\n", qc.name,
                  SimdLevelName(static_cast<SimdLevel>(level)),
                  Secs(seconds).c_str(), scalar_s / seconds);
    }
  }
  ForceSimdLevelForTest(-1);

  // -- JSON record ----------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_simd.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_simd.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"scale_factor\": %.6g,\n"
               "  \"rows\": %lld,\n"
               "  \"reps\": %d,\n"
               "  \"best_tier\": \"%s\",\n"
               "  \"kernel_micro\": {\n"
               "    \"workload\": \"year IN {1997,1998} group by c_nation, "
               "sum revenue, 1 thread\",\n"
               "    \"generic_hash_seconds\": %.6f,\n",
               sf, static_cast<long long>(rows), reps,
               SimdLevelName(static_cast<SimdLevel>(best)), generic_s);
  for (int level = 0; level <= best; ++level) {
    std::fprintf(json, "    \"fused_%s_seconds\": %.6f,\n",
                 SimdLevelName(static_cast<SimdLevel>(level)),
                 tier_seconds[level]);
  }
  std::fprintf(json,
               "    \"speedup_best_vs_generic\": %.3f\n"
               "  },\n"
               "  \"engine_queries\": [\n",
               generic_s / tier_seconds[best]);
  for (size_t i = 0; i < engine_points.size(); ++i) {
    const EnginePoint& p = engine_points[i];
    std::fprintf(json,
                 "    {\"query\": \"%s\", \"tier\": \"%s\", "
                 "\"seconds\": %.6f}%s\n",
                 p.query, SimdLevelName(static_cast<SimdLevel>(p.tier)),
                 p.seconds, i + 1 < engine_points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_simd.json\n");
  return 0;
}
