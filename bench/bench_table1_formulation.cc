// Reproduces Table 1 of the paper: formulation effort (ASCII characters,
// the metric of Jain et al. [11]) for the four intention types — the SQL
// and Python a user would write by hand (generated for the NP plan, as in
// the paper) versus the assess statement itself.
//
// Paper's numbers for reference (SQL / Python / Total / assess):
//   Constant  481 / 7006 / 7487 / 143
//   External  989 / 6193 / 7182 / 260
//   Sibling  1169 / 6309 / 7478 / 270
//   Past     1954 / 7049 / 9003 / 254
// The expectation is the *shape*: Total is more than an order of magnitude
// larger than assess for every intention, and Past has the largest total.

#include <cstdio>

#include "assess/effort.h"
#include "bench_util.h"

int main() {
  using namespace assess;

  SsbConfig config;
  config.scale_factor = 0.002;  // effort is data-independent; keep it tiny
  auto db = BuildSsbDatabase(config);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  AssessSession session(db->get());

  std::printf("Table 1: Formulation effort for different intentions\n");
  std::printf("(ASCII characters; SQL+Python generated for the NP plan)\n\n");
  std::printf("%-10s %8s %8s %8s %8s %12s\n", "", "SQL", "Python", "Total",
              "assess", "Total/assess");
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto analyzed = session.Prepare(stmt.text);
    if (!analyzed.ok()) {
      std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
      return 1;
    }
    auto report = MeasureFormulationEffort(*analyzed, *db->get());
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %8lld %8lld %8lld %8lld %11.1fx\n", stmt.name.c_str(),
                static_cast<long long>(report->sql_chars),
                static_cast<long long>(report->python_chars),
                static_cast<long long>(report->total_chars()),
                static_cast<long long>(report->assess_chars),
                static_cast<double>(report->total_chars()) /
                    static_cast<double>(report->assess_chars));
  }
  std::printf(
      "\nPaper shape check: Total >> assess (one order of magnitude) for\n"
      "every intention; Past is the costliest formulation.\n");
  return 0;
}
