// Reproduces Figure 4 of the paper: the breakdown of the execution time of
// the Past intention — the most complex one, since forecasting requires a
// regression — into its steps (Get C, Get B, Get C+B, Trans., Join, Comp.,
// Label) for each plan and increasing cube cardinalities.

#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace assess;
  using namespace assess::bench;

  double base = DefaultBaseSf();
  int reps = RepsFromEnv();
  auto scales = SsbScaleSeries(base);
  const WorkloadStatement past = SsbWorkload()[3];

  // plan -> per-scale timings.
  std::map<PlanKind, std::vector<StepTimings>> breakdown;

  for (const SsbScalePoint& point : scales) {
    auto db = BuildScale(point, /*include_budget=*/false);
    AssessSession session(db.get());
    auto analyzed = session.Prepare(past.text);
    if (!analyzed.ok()) {
      std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
      return 1;
    }
    for (PlanKind plan : FeasiblePlans(*analyzed)) {
      breakdown[plan].push_back(
          RunStatement(session, past.text, plan, reps).mean);
    }
  }

  std::printf(
      "Figure 4: Breakdown of the execution time of the Past intention for\n"
      "increasing cardinalities of the target cube (seconds; base SF %.3g,\n"
      "%d run(s) averaged)\n",
      base, reps);
  for (const auto& [plan, timings] : breakdown) {
    std::printf("\n%s:\n%-8s %9s %9s %9s %9s %9s %9s %9s\n",
                std::string(PlanKindToString(plan)).c_str(), "",
                "Get C", "Get B", "Get C+B", "Trans.", "Join", "Comp.",
                "Label");
    for (size_t i = 0; i < timings.size(); ++i) {
      const StepTimings& t = timings[i];
      std::printf("%-8s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f\n",
                  scales[i].name.c_str(), t.get_c, t.get_b, t.get_cb,
                  t.transform, t.join, t.compare, t.label);
    }
  }
  std::printf(
      "\nPaper shape check: comparison and labeling are negligible (orders\n"
      "of magnitude below the get steps); the transformation (regression +\n"
      "pivot for NP) is a dominant client-side step; NP pays two gets plus\n"
      "a client join, JOP/POP a single fused get.\n");
  return 0;
}
