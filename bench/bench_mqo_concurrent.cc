// Measures what the server's multi-query optimizer is worth on a correlated
// concurrent workload: N loopback clients fire their queries together (the
// dashboard-refresh pattern — many tiles, one filter), every round slices a
// date never queried before so the result cache cannot answer round r from
// round r-1, and the same workload runs once with the micro-batch window
// open and once with --mqo-window-us=0. On a single-core host the entire
// difference comes from shared scans, not parallelism: with the window open
// each round costs one fused scan instead of one per distinct query shape.
// Writes BENCH_mqo.json for the regression record.

#include <atomic>
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/assess_client.h"
#include "server/assessd.h"
#include "server/protocol.h"
#include "ssb/sales_generator.h"

namespace {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  long long value = std::atoll(env);
  return value > 0 ? value : fallback;
}

}  // namespace

int main() {
  using namespace assess;
  using namespace assess::bench;

  const int64_t kFacts = EnvInt64("ASSESS_MQO_BENCH_FACTS", 4000000);
  const int kRounds =
      static_cast<int>(EnvInt64("ASSESS_MQO_BENCH_ROUNDS", 20));
  const int64_t kWindowUs = EnvInt64("ASSESS_MQO_BENCH_WINDOW_US", 20000);
  constexpr int kClients = 6;

  std::fprintf(stderr, "[bench] generating SALES (%lld facts)...\n",
               static_cast<long long>(kFacts));
  SalesConfig config;
  config.facts = kFacts;
  config.seed = 7;
  auto built = BuildSalesDatabase(config);
  if (!built.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<StarDatabase> db = std::move(*built);

  // The rotating selections: one fresh date member per round (uniform FK,
  // so no zone map prunes the scan and every round reads the whole fact
  // table exactly as often as its plan demands).
  auto bound = db->Find("SALES");
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  const Hierarchy& date = (*bound)->schema().hierarchy(0);
  if (date.LevelCardinality(0) < kRounds) {
    std::fprintf(stderr, "not enough date members for %d rounds\n", kRounds);
    return 1;
  }

  // Six correlated shapes per round, all over the same selection: one exact
  // duplicate pair (single-flight), distinct group-bys sharing the scan,
  // and a year roll-up a month batch-mate subsumes.
  auto statement = [&](int client, int round) {
    const std::string& day = date.MemberName(0, round);
    const char* shape[kClients] = {
        "by month assess quantity",
        "by month assess quantity",  // duplicate of client 0
        "by product assess quantity",
        "by country assess storeSales",
        "by month, country assess storeCost",
        "by year assess quantity",
    };
    return std::string("with SALES for date = '") + day + "' " +
           shape[client] + " against 10 labels quartiles";
  };

  struct ConfigResult {
    int64_t window_us = 0;
    int requests = 0;
    double seconds = 0.0;
    double qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    uint64_t batches = 0;
    uint64_t queries_batched = 0;
    uint64_t shared_scans = 0;
    uint64_t piggybacked = 0;
  };
  std::vector<ConfigResult> results;

  std::printf("MQO concurrent correlated workload (%lld facts, %d clients, "
              "%d rounds)\n\n",
              static_cast<long long>(kFacts), kClients, kRounds);
  std::printf("%12s %9s %10s %10s %9s %9s %8s %7s\n", "window(us)", "requests",
              "wall(s)", "qps", "p50(ms)", "p99(ms)", "batches", "shared");

  for (int64_t window_us : {int64_t{0}, kWindowUs}) {
    ServerOptions options;
    options.worker_threads = 2;
    options.mqo_window_us = window_us;
    options.mqo_max_batch = kClients;  // flush as soon as the round is in
    AssessServer server(db.get(), options);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }

    std::atomic<int> failures{0};
    std::barrier round_barrier(kClients);
    Stopwatch watch;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = AssessClient::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int round = 0; round < kRounds; ++round) {
          round_barrier.arrive_and_wait();
          if (!client->Query(statement(c, round)).ok()) ++failures;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double seconds = watch.ElapsedSeconds();

    ServerStats stats = server.Snapshot();
    server.Stop();
    if (failures.load() > 0) {
      std::fprintf(stderr, "FAIL: %d request(s) failed at window=%lld\n",
                   failures.load(), static_cast<long long>(window_us));
      return 1;
    }

    ConfigResult row;
    row.window_us = window_us;
    row.requests = kClients * kRounds;
    row.seconds = seconds;
    row.qps = seconds > 0.0 ? row.requests / seconds : 0.0;
    row.p50_ms = stats.p50_ms;
    row.p99_ms = stats.p99_ms;
    row.batches = stats.mqo_batches;
    row.queries_batched = stats.mqo_queries_batched;
    row.shared_scans = stats.mqo_shared_scans;
    row.piggybacked = stats.mqo_queries_piggybacked;
    results.push_back(row);
    std::printf("%12lld %9d %10.3f %10.1f %9.2f %9.2f %8llu %7llu\n",
                static_cast<long long>(row.window_us), row.requests,
                row.seconds, row.qps, row.p50_ms, row.p99_ms,
                static_cast<unsigned long long>(row.batches),
                static_cast<unsigned long long>(row.shared_scans));
    std::fprintf(stderr,
                 "[bench] window=%lld cache: %llu lookups, %llu exact, "
                 "%llu subsumed, %llu misses\n",
                 static_cast<long long>(window_us),
                 static_cast<unsigned long long>(stats.cache_lookups),
                 static_cast<unsigned long long>(stats.cache_exact_hits),
                 static_cast<unsigned long long>(stats.cache_subsumption_hits),
                 static_cast<unsigned long long>(stats.cache_misses));
  }

  double speedup = results[0].qps > 0.0 ? results[1].qps / results[0].qps : 0.0;
  double avg_batch =
      results[1].batches > 0
          ? static_cast<double>(results[1].queries_batched) / results[1].batches
          : 0.0;
  double shared_ratio =
      results[1].batches > 0
          ? static_cast<double>(results[1].shared_scans) / results[1].batches
          : 0.0;
  std::printf("\nQPS speedup (window %lld us vs off): %.2fx; "
              "avg batch %.1f queries, %.2f shared scans/batch, "
              "%llu piggybacked\n",
              static_cast<long long>(kWindowUs), speedup, avg_batch,
              shared_ratio,
              static_cast<unsigned long long>(results[1].piggybacked));

  std::FILE* json = std::fopen("BENCH_mqo.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_mqo.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"facts\": %lld,\n  \"clients\": %d,\n"
               "  \"rounds\": %d,\n  \"speedup\": %.4f,\n"
               "  \"avg_batch_size\": %.4f,\n"
               "  \"shared_scan_ratio\": %.4f,\n  \"configs\": [\n",
               static_cast<long long>(kFacts), kClients, kRounds, speedup,
               avg_batch, shared_ratio);
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(json,
                 "    {\"mqo_window_us\": %lld, \"requests\": %d, "
                 "\"seconds\": %.6f, \"qps\": %.2f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"mqo_batches\": %llu, "
                 "\"mqo_queries_batched\": %llu, \"mqo_shared_scans\": %llu, "
                 "\"mqo_queries_piggybacked\": %llu}%s\n",
                 static_cast<long long>(r.window_us), r.requests, r.seconds,
                 r.qps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.batches),
                 static_cast<unsigned long long>(r.queries_batched),
                 static_cast<unsigned long long>(r.shared_scans),
                 static_cast<unsigned long long>(r.piggybacked),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_mqo.json\n");

  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx below the 1.5x acceptance floor\n",
                 speedup);
    return 1;
  }
  return 0;
}
