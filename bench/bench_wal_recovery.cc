// WAL durability benchmark: concurrent ingest threads commit batches into
// their own cubes under each fsync mode — `batch` (one fsync per commit,
// the durable baseline), `group` (leader-elected coalesced fsync), and
// `none` (no sync; the filesystem-speed ceiling) — then the data directory
// is reopened to time crash recovery (full WAL replay) and a checkpoint.
// One thread per cube because same-cube ingests serialize on the cube's
// ingest mutex: group commit coalesces *across* concurrent committers, so
// that is what the bench must present. Writes BENCH_wal.json; the headline
// number is the group-vs-batch throughput ratio (the whole point of group
// commit is that N waiting committers share one fsync).
//
// The data directory lives under the working directory, not /tmp: on CI
// hosts /tmp is often tmpfs, where fsync is free and every mode measures
// the same thing.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ingest/ingestor.h"
#include "storage/star_schema.h"
#include "wal/durability.h"

namespace {

using namespace assess;
using namespace assess::bench;

constexpr int kMembers = 8;  // items per shard dimension

std::string ShardName(int shard) { return "SHARD" + std::to_string(shard); }

// One tiny single-dimension cube per ingest thread. The rows are
// member-stable (every batch reuses the seeded items), so the bench times
// the commit path — parse, append, WAL fsync — and not auto-insert locks.
Result<std::unique_ptr<StarDatabase>> BuildShardedDb(int shards) {
  auto db = std::make_unique<StarDatabase>();
  for (int shard = 0; shard < shards; ++shard) {
    auto hier = std::make_shared<Hierarchy>("Item");
    hier->AddLevel("item");
    DimensionTable items("item", hier);
    for (int i = 0; i < kMembers; ++i) {
      MemberId id = hier->AddMember(0, "item" + std::to_string(i));
      items.AddRow({id});
    }
    auto schema = std::make_shared<CubeSchema>(ShardName(shard));
    schema->AddHierarchy(hier);
    schema->AddMeasure({"value", AggOp::kSum});

    FactTable facts(ShardName(shard), /*dims=*/1, /*measures=*/1);
    for (int i = 0; i < kMembers; ++i) {
      facts.AddRow({i}, {1.0});
    }
    std::vector<DimensionTable> dims;
    dims.push_back(std::move(items));
    auto bound = std::make_unique<BoundCube>(schema, std::move(dims),
                                             std::move(facts));
    Status registered = db->Register(ShardName(shard), std::move(bound));
    if (!registered.ok()) return registered;
  }
  return db;
}

// Deterministic member-stable CSV batch; `salt` varies the measures so
// batches are not byte-identical.
std::string Batch(int rows, int64_t salt) {
  std::string text = "item,value\n";
  for (int r = 0; r < rows; ++r) {
    text += "item" + std::to_string((salt + r) % kMembers);
    text += ',';
    text += std::to_string(1 + (salt * 31 + r) % 9);
    text += '\n';
  }
  return text;
}

struct ModeResult {
  double ingest_seconds = 0;
  double batches_per_sec = 0;
  double rows_per_sec = 0;
  uint64_t batches = 0;
  uint64_t rows = 0;
  WalStats wal;
  double fsyncs_per_batch = 0;
  double recovery_ms = 0;
  uint64_t replayed_records = 0;
  double checkpoint_ms = 0;
};

ModeResult RunMode(FsyncMode mode, int threads, int batches_per_thread,
                   int rows_per_batch) {
  const std::filesystem::path dir =
      std::filesystem::path("bench_wal_data_" +
                            std::string(FsyncModeToString(mode)));
  std::filesystem::remove_all(dir);

  DurabilityOptions options;
  options.wal.fsync_mode = mode;
  options.checkpoint_wal_bytes = 0;  // only explicit checkpoints
  auto opened = DurabilityManager::Open(
      dir.string(), options, [&] { return BuildShardedDb(threads); });
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  auto mgr = std::move(opened).value();

  IngestOptions ingest_options;
  ingest_options.durability = mgr.get();
  Ingestor ingestor(mgr->db(), /*cache=*/nullptr, ingest_options);

  ModeResult result;
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::string cube = ShardName(t);
      for (int b = 0; b < batches_per_thread; ++b) {
        auto stats = ingestor.IngestText(
            cube, Batch(rows_per_batch, int64_t{t} * 1000 + b));
        if (!stats.ok()) {
          std::fprintf(stderr, "ingest failed: %s\n",
                       stats.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.ingest_seconds = watch.ElapsedSeconds();
  result.batches = uint64_t(threads) * batches_per_thread;
  result.rows = result.batches * rows_per_batch;
  result.batches_per_sec = result.batches / result.ingest_seconds;
  result.rows_per_sec = result.rows / result.ingest_seconds;
  result.wal = mgr->wal_stats();
  result.fsyncs_per_batch =
      result.batches > 0
          ? static_cast<double>(result.wal.fsyncs) / result.batches
          : 0.0;

  // Crash recovery: drop the manager (no shutdown checkpoint, like a
  // crash) and reopen — every batch replays from the WAL.
  mgr.reset();
  Stopwatch recovery_watch;
  auto reopened = DurabilityManager::Open(
      dir.string(), options, [&] { return BuildShardedDb(threads); });
  if (!reopened.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 reopened.status().ToString().c_str());
    std::exit(1);
  }
  result.recovery_ms = recovery_watch.ElapsedSeconds() * 1000.0;
  result.replayed_records = (*reopened)->recovery().replayed_records;

  Stopwatch checkpoint_watch;
  Status checkpointed = (*reopened)->Checkpoint();
  if (!checkpointed.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n",
                 checkpointed.ToString().c_str());
    std::exit(1);
  }
  result.checkpoint_ms = checkpoint_watch.ElapsedSeconds() * 1000.0;

  reopened->reset();
  std::filesystem::remove_all(dir);
  return result;
}

void PrintMode(const char* name, const ModeResult& r) {
  std::printf(
      "%-8s %7.0f batches/s  %9.0f rows/s   %.2f fsyncs/batch "
      "(%llu fsyncs / %llu appends)\n"
      "         recovery %.1f ms (%llu records replayed)   checkpoint "
      "%.1f ms\n",
      name, r.batches_per_sec, r.rows_per_sec, r.fsyncs_per_batch,
      static_cast<unsigned long long>(r.wal.fsyncs),
      static_cast<unsigned long long>(r.wal.appends), r.recovery_ms,
      static_cast<unsigned long long>(r.replayed_records), r.checkpoint_ms);
}

void WriteModeJson(std::FILE* json, const char* name, const ModeResult& r,
                   bool trailing_comma) {
  std::fprintf(
      json,
      "  \"%s\": {\n"
      "    \"ingest_seconds\": %.4f,\n"
      "    \"batches\": %llu,\n"
      "    \"rows\": %llu,\n"
      "    \"batches_per_sec\": %.1f,\n"
      "    \"rows_per_sec\": %.1f,\n"
      "    \"wal_appends\": %llu,\n"
      "    \"wal_fsyncs\": %llu,\n"
      "    \"wal_bytes\": %llu,\n"
      "    \"fsyncs_per_batch\": %.3f,\n"
      "    \"recovery_ms\": %.2f,\n"
      "    \"replayed_records\": %llu,\n"
      "    \"checkpoint_ms\": %.2f\n"
      "  }%s\n",
      name, r.ingest_seconds, static_cast<unsigned long long>(r.batches),
      static_cast<unsigned long long>(r.rows), r.batches_per_sec,
      r.rows_per_sec, static_cast<unsigned long long>(r.wal.appends),
      static_cast<unsigned long long>(r.wal.fsyncs),
      static_cast<unsigned long long>(r.wal.bytes_written),
      r.fsyncs_per_batch, r.recovery_ms,
      static_cast<unsigned long long>(r.replayed_records), r.checkpoint_ms,
      trailing_comma ? "," : "");
}

}  // namespace

int main() {
  const int threads = 16;
  const int batches_per_thread = RepsFromEnv(3) * 16;
  const int rows_per_batch = 4;

  std::printf(
      "WAL durability (%d threads x %d batches of %d rows, one cube per "
      "thread)\n\n",
      threads, batches_per_thread, rows_per_batch);

  ModeResult batch =
      RunMode(FsyncMode::kAlways, threads, batches_per_thread, rows_per_batch);
  ModeResult group =
      RunMode(FsyncMode::kGroup, threads, batches_per_thread, rows_per_batch);
  ModeResult none =
      RunMode(FsyncMode::kNone, threads, batches_per_thread, rows_per_batch);
  PrintMode("batch", batch);
  PrintMode("group", group);
  PrintMode("none", none);

  const double speedup = batch.batches_per_sec > 0
                             ? group.batches_per_sec / batch.batches_per_sec
                             : 0.0;
  std::printf("\ngroup commit speedup over fsync-per-batch: %.2fx\n",
              speedup);

  std::FILE* json = std::fopen("BENCH_wal.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_wal.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"threads\": %d,\n"
               "  \"batches_per_thread\": %d,\n"
               "  \"rows_per_batch\": %d,\n"
               "  \"group_vs_batch_speedup\": %.3f,\n",
               threads, batches_per_thread, rows_per_batch, speedup);
  WriteModeJson(json, "batch", batch, /*trailing_comma=*/true);
  WriteModeJson(json, "group", group, /*trailing_comma=*/true);
  WriteModeJson(json, "none", none, /*trailing_comma=*/false);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_wal.json\n");
  return 0;
}
