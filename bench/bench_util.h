#ifndef ASSESS_BENCH_BENCH_UTIL_H_
#define ASSESS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "assess/session.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"

namespace assess::bench {

/// Repetitions per measurement (the paper averages 5 runs); override with
/// ASSESS_BENCH_REPS.
inline int RepsFromEnv(int fallback = 3) {
  const char* env = std::getenv("ASSESS_BENCH_REPS");
  if (env == nullptr || *env == '\0') return fallback;
  int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

/// Default base scale factor: SSB1 = 0.02 (120k lineorders), so the series
/// SSB1/SSB10/SSB100 spans 1.2e5..1.2e7 facts on a laptop-class machine
/// while preserving the paper's 1:10:100 ratio. Override with
/// ASSESS_SSB_BASE_SF (e.g. 0.1 for a 6e5..6e7 series).
inline double DefaultBaseSf() { return BaseScaleFactorFromEnv(0.02); }

/// Builds one scale point of the series, reporting progress on stderr so
/// long generations are visible.
inline std::unique_ptr<StarDatabase> BuildScale(const SsbScalePoint& point,
                                                bool include_budget = true) {
  std::fprintf(stderr, "[bench] generating %s (SF %.3g, %lld lineorders)...\n",
               point.name.c_str(), point.scale_factor,
               static_cast<long long>(SsbFactCount(point.scale_factor)));
  SsbConfig config;
  config.scale_factor = point.scale_factor;
  config.include_budget = include_budget;
  auto db = BuildSsbDatabase(config);
  if (!db.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}

struct RunStats {
  StepTimings mean;     // averaged over repetitions
  int64_t cells = 0;    // |result|
  double total() const { return mean.Total(); }
};

/// Executes one query under a per-call trace (when tracing is compiled in),
/// so the returned StepTimings are the span-tree view — the breakdown
/// benches then read the same clock as EXPLAIN ANALYZE. With
/// ASSESS_TRACING=OFF the trace is inert and the executor's stopwatches
/// fill the timings as before.
inline Result<AssessResult> TracedQuery(const AssessSession& session,
                                        const std::string& text,
                                        PlanKind plan) {
  TraceContext trace;
  TraceContext::Scope scope(&trace);
  return session.Query(text, plan);
}

/// Runs `text` under `plan` `reps` times and averages the step timings
/// (mirroring Section 6.2's repeated-execution protocol).
inline RunStats RunStatement(const AssessSession& session,
                             const std::string& text, PlanKind plan,
                             int reps) {
  RunStats stats;
  for (int r = 0; r < reps; ++r) {
    auto result = TracedQuery(session, text, plan);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    const StepTimings& t = result->timings;
    stats.mean.get_c += t.get_c / reps;
    stats.mean.get_b += t.get_b / reps;
    stats.mean.get_cb += t.get_cb / reps;
    stats.mean.transform += t.transform / reps;
    stats.mean.join += t.join / reps;
    stats.mean.compare += t.compare / reps;
    stats.mean.label += t.label / reps;
    stats.cells = result->cube.NumRows();
  }
  return stats;
}

/// Runs `text` under every plan in `plans`, interleaving repetitions
/// round-robin so slow system drift does not bias one plan, and averages
/// per plan. Mirrors Section 6.2's repeated-execution protocol.
inline std::vector<RunStats> RunStatementsInterleaved(
    const AssessSession& session, const std::string& text,
    const std::vector<PlanKind>& plans, int reps) {
  std::vector<RunStats> stats(plans.size());
  for (int r = 0; r < reps; ++r) {
    for (size_t i = 0; i < plans.size(); ++i) {
      auto result = TracedQuery(session, text, plans[i]);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      const StepTimings& t = result->timings;
      stats[i].mean.get_c += t.get_c / reps;
      stats[i].mean.get_b += t.get_b / reps;
      stats[i].mean.get_cb += t.get_cb / reps;
      stats[i].mean.transform += t.transform / reps;
      stats[i].mean.join += t.join / reps;
      stats[i].mean.compare += t.compare / reps;
      stats[i].mean.label += t.label / reps;
      stats[i].cells = result->cube.NumRows();
    }
  }
  return stats;
}

/// Formats seconds in a fixed width for the tables.
inline std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.3f", s);
  return buf;
}

}  // namespace assess::bench

#endif  // ASSESS_BENCH_BENCH_UTIL_H_
