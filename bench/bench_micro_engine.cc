// Micro/ablation benchmarks for the design choices called out in DESIGN.md:
//  - hash aggregation throughput of the engine (the cost of every `get`);
//  - property P3 as an ablation: sibling NP (two gets + client join) vs JOP
//    (fused join) vs POP (fused pivot) on identical statements;
//  - materialized views on/off for a coarse get;
//  - FlatMap64 vs std::unordered_map for the aggregation inner loop;
//  - labeling and forecasting primitive costs.

#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "assess/session.h"
#include "common/rng.h"
#include "forecast/forecast.h"
#include "labeling/distribution_labeling.h"
#include "labeling/kmeans_labeling.h"
#include "labeling/range_labeling.h"
#include "ssb/ssb_generator.h"
#include "ssb/workload.h"
#include "storage/flat_map64.h"
#include "storage/star_query_engine.h"

namespace assess {
namespace {

// One shared database for the micro benches (SF 0.01: 60k lineorders).
const StarDatabase& SharedDb() {
  static StarDatabase* db = [] {
    SsbConfig config;
    config.scale_factor = 0.01;
    return BuildSsbDatabase(config)->release();
  }();
  return *db;
}

StarDatabase& SharedMutableDb() {
  return const_cast<StarDatabase&>(SharedDb());
}

void BM_EngineAggregateByPart(benchmark::State& state) {
  StarQueryEngine engine(&SharedDb(), /*use_views=*/false);
  const BoundCube* ssb = *SharedDb().Find("SSB");
  CubeQuery q = *CubeQuery::Make(ssb->schema(), "SSB", {"part"}, {},
                                 {"revenue"});
  for (auto _ : state) {
    auto cube = engine.Execute(q);
    benchmark::DoNotOptimize(cube->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * ssb->facts().NumRows());
}
BENCHMARK(BM_EngineAggregateByPart);

void BM_EngineAggregateApex(benchmark::State& state) {
  StarQueryEngine engine(&SharedDb(), /*use_views=*/false);
  const BoundCube* ssb = *SharedDb().Find("SSB");
  CubeQuery q = *CubeQuery::Make(ssb->schema(), "SSB", {}, {}, {"revenue"});
  for (auto _ : state) {
    auto cube = engine.Execute(q);
    benchmark::DoNotOptimize(cube->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * ssb->facts().NumRows());
}
BENCHMARK(BM_EngineAggregateApex);

void BM_EngineAggregateParallel(benchmark::State& state) {
  StarQueryEngine engine(&SharedDb(), /*use_views=*/false,
                         static_cast<int>(state.range(0)));
  const BoundCube* ssb = *SharedDb().Find("SSB");
  CubeQuery q = *CubeQuery::Make(ssb->schema(), "SSB", {"part"}, {},
                                 {"revenue"});
  for (auto _ : state) {
    auto cube = engine.Execute(q);
    benchmark::DoNotOptimize(cube->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * ssb->facts().NumRows());
}
BENCHMARK(BM_EngineAggregateParallel)->Arg(1)->Arg(2)->Arg(4);

// --- P3 ablation: the same sibling statement under each plan --------------

void RunSiblingPlan(benchmark::State& state, PlanKind plan) {
  AssessSession session(&SharedDb());
  const std::string text = SsbWorkload()[2].text;
  for (auto _ : state) {
    auto result = session.Query(text, plan);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->cube.NumRows());
  }
}
void BM_SiblingNP(benchmark::State& state) {
  RunSiblingPlan(state, PlanKind::kNP);
}
void BM_SiblingJOP(benchmark::State& state) {
  RunSiblingPlan(state, PlanKind::kJOP);
}
void BM_SiblingPOP(benchmark::State& state) {
  RunSiblingPlan(state, PlanKind::kPOP);
}
BENCHMARK(BM_SiblingNP);
BENCHMARK(BM_SiblingJOP);
BENCHMARK(BM_SiblingPOP);

// --- Materialized-view ablation ---------------------------------------------

void BM_GetByBrandNoView(benchmark::State& state) {
  StarQueryEngine engine(&SharedDb(), /*use_views=*/false);
  const BoundCube* ssb = *SharedDb().Find("SSB");
  CubeQuery q = *CubeQuery::Make(ssb->schema(), "SSB", {"brand"}, {},
                                 {"revenue"});
  for (auto _ : state) {
    auto cube = engine.Execute(q);
    benchmark::DoNotOptimize(cube->NumRows());
  }
}
BENCHMARK(BM_GetByBrandNoView);

void BM_GetByBrandWithView(benchmark::State& state) {
  static bool materialized = [] {
    StarQueryEngine engine(&SharedDb());
    return engine
        .MaterializeView(&SharedMutableDb(), "SSB", {"brand", "c_region"},
                         "mv_brand_region")
        .ok();
  }();
  if (!materialized) {
    state.SkipWithError("view materialization failed");
    return;
  }
  StarQueryEngine engine(&SharedDb(), /*use_views=*/true);
  const BoundCube* ssb = *SharedDb().Find("SSB");
  CubeQuery q = *CubeQuery::Make(ssb->schema(), "SSB", {"brand"}, {},
                                 {"revenue"});
  for (auto _ : state) {
    auto cube = engine.Execute(q);
    benchmark::DoNotOptimize(cube->NumRows());
  }
}
BENCHMARK(BM_GetByBrandWithView);

// --- FlatMap64 vs std::unordered_map -----------------------------------------

void BM_FlatMap64Aggregate(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Uniform(n / 8) + 1;
  for (auto _ : state) {
    FlatMap64 map(1024);
    int32_t groups = 0;
    for (uint64_t k : keys) {
      bool inserted = false;
      int32_t g = map.FindOrInsert(k, groups, &inserted);
      if (inserted) ++groups;
      benchmark::DoNotOptimize(g);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatMap64Aggregate)->Arg(1 << 16)->Arg(1 << 20);

void BM_StdUnorderedMapAggregate(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Uniform(n / 8) + 1;
  for (auto _ : state) {
    std::unordered_map<uint64_t, int32_t> map;
    int32_t groups = 0;
    for (uint64_t k : keys) {
      auto [it, inserted] = map.emplace(k, groups);
      if (inserted) ++groups;
      benchmark::DoNotOptimize(it->second);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdUnorderedMapAggregate)->Arg(1 << 16)->Arg(1 << 20);

// --- Labeling primitives -----------------------------------------------------

std::vector<double> RandomValues(int64_t n) {
  Rng rng(11);
  std::vector<double> values(n);
  for (double& v : values) v = rng.NextDouble() * 1000.0;
  return values;
}

void BM_RangeLabeling(benchmark::State& state) {
  auto fn = *RangeLabeling::Make(
      {{-1e300, 250, true, false, "low"},
       {250, 750, true, true, "mid"},
       {750, 1e300, false, true, "high"}});
  std::vector<double> values = RandomValues(state.range(0));
  std::vector<std::string> labels;
  for (auto _ : state) {
    Status st = fn.Apply(std::span<const double>(values), &labels);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeLabeling)->Arg(1 << 16);

void BM_QuartileLabeling(benchmark::State& state) {
  auto fn = *QuantileLabeling::Make(4);
  std::vector<double> values = RandomValues(state.range(0));
  std::vector<std::string> labels;
  for (auto _ : state) {
    Status st = fn.Apply(std::span<const double>(values), &labels);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuartileLabeling)->Arg(1 << 16);

void BM_KMeansLabeling(benchmark::State& state) {
  auto fn = *KMeansLabeling::Make(5);
  std::vector<double> values = RandomValues(state.range(0));
  std::vector<std::string> labels;
  for (auto _ : state) {
    Status st = fn.Apply(std::span<const double>(values), &labels);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeansLabeling)->Arg(1 << 14);

// --- Forecasting primitive ---------------------------------------------------

void BM_LinearRegressionForecast(benchmark::State& state) {
  std::vector<double> series = {10, 20, 30, 40};
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinearRegressionNext(series));
  }
}
BENCHMARK(BM_LinearRegressionForecast);

}  // namespace
}  // namespace assess

BENCHMARK_MAIN();
