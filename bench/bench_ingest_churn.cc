// Ingest-churn benchmark: the SSB workload keeps querying while batches of
// member-stable rows stream into the fact table, once with incremental
// maintenance (epoch-swept cache + view delta-merges) and once with the
// full-invalidation baseline (cache cleared, views rebuilt from scratch on
// every batch). Each statement runs twice per round, so the second pass can
// hit the epoch-keyed cache; every ingest then advances the epoch and the
// next round starts cold again. Reports query and ingest latency
// percentiles plus the cache counters per mode, and writes
// BENCH_ingest.json for the regression record. Single-threaded on purpose:
// interleaving is deterministic and honest on a one-core CI host, and the
// snapshot-isolation properties of concurrent churn are proven by
// ingest_test, not timed here.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cache/cube_cache.h"
#include "ingest/ingestor.h"
#include "storage/star_query_engine.h"

namespace {

using namespace assess;
using namespace assess::bench;

std::string QuoteCsv(const std::string& field) {
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

// Header naming every hierarchy's key column and every measure.
std::string ChurnHeader(const CubeSchema& schema) {
  std::string header;
  for (int h = 0; h < schema.hierarchy_count(); ++h) {
    if (!header.empty()) header += ',';
    header += schema.hierarchy(h).level_name(0);
  }
  for (int m = 0; m < schema.measure_count(); ++m) {
    header += ',';
    header += schema.measure(m).name;
  }
  header += '\n';
  return header;
}

// One CSV batch of member-stable rows, keys sampled from the live
// dimensions (deterministically, so both modes ingest identical data).
std::string ChurnBatch(const BoundCube& bound, int rows, int64_t salt) {
  const CubeSchema& schema = bound.schema();
  std::string text = ChurnHeader(schema);
  for (int r = 0; r < rows; ++r) {
    std::string line;
    for (int h = 0; h < schema.hierarchy_count(); ++h) {
      const DimensionTable& dim = bound.dimension(h);
      const int64_t row =
          (salt * 7919 + int64_t{r} * 131 + h * 31) % dim.NumRows();
      if (!line.empty()) line += ',';
      line += QuoteCsv(dim.hierarchy().MemberName(0, dim.CodeAt(row, 0)));
    }
    for (int m = 0; m < schema.measure_count(); ++m) {
      line += ',';
      line += std::to_string(1 + (r + m) % 7);
    }
    text += line;
    text += '\n';
  }
  return text;
}

double PercentileMs(std::vector<double> seconds, double p) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const size_t idx = std::min(
      seconds.size() - 1,
      static_cast<size_t>(p * static_cast<double>(seconds.size() - 1)));
  return seconds[idx] * 1000.0;
}

struct ModeResult {
  double query_p50_ms = 0, query_p99_ms = 0;
  double ingest_p50_ms = 0, ingest_p99_ms = 0;
  double hit_rate = 0;
  CacheStats cache;
  uint64_t rows_ingested = 0;
  uint64_t mv_incremental_updates = 0;
  uint64_t mv_full_rebuilds = 0;
  uint64_t cache_invalidations = 0;
  uint64_t repacks = 0;
};

ModeResult RunChurn(bool incremental, double sf, int rounds, int batch_rows) {
  // The workload's External statement compares against the BUDGET cube, so
  // keep it; churn streams into SSB only.
  auto db = BuildScale({"SSB", sf});
  auto bound = db->FindMutable("SSB");
  if (!bound.ok()) {
    std::fprintf(stderr, "no SSB cube: %s\n",
                 bound.status().ToString().c_str());
    std::exit(1);
  }
  const CubeSchema& schema = (*bound)->schema();

  ExecutorOptions options;
  options.shared_cache = std::make_shared<CubeResultCache>(options.cache);
  AssessSession session(db.get(), options);

  // Two coarse materialized views, so every batch pays view maintenance —
  // a delta-merge or a from-scratch rebuild depending on the mode.
  StarQueryEngine engine(db.get(), /*use_views=*/false, /*threads=*/1);
  std::vector<std::string> view_levels;
  for (int h = 0; h < schema.hierarchy_count() && view_levels.size() < 2;
       ++h) {
    const Hierarchy& hier = schema.hierarchy(h);
    view_levels.push_back(hier.level_name(hier.level_count() - 1));
    auto built = engine.MaterializeView(db.get(), "SSB", view_levels,
                                        "churn_view_" + std::to_string(h));
    if (!built.ok()) {
      std::fprintf(stderr, "materialize failed: %s\n",
                   built.status().ToString().c_str());
      std::exit(1);
    }
  }

  IngestOptions ingest_options;
  ingest_options.incremental = incremental;
  ingest_options.batch_rows = batch_rows;
  Ingestor ingestor(db.get(), options.shared_cache, ingest_options);

  const std::vector<WorkloadStatement> workload = SsbWorkload();
  std::vector<double> query_seconds;
  std::vector<double> ingest_seconds;
  ModeResult result;
  for (int round = 0; round < rounds; ++round) {
    // Two passes per round: the first repopulates the cache at the current
    // epoch, the second gets to hit it.
    for (int pass = 0; pass < 2; ++pass) {
      for (const WorkloadStatement& stmt : workload) {
        Stopwatch watch;
        auto r = session.Query(stmt.text);
        if (!r.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", stmt.name.c_str(),
                       r.status().ToString().c_str());
          std::exit(1);
        }
        query_seconds.push_back(watch.ElapsedSeconds());
      }
    }
    std::string batch = ChurnBatch(**bound, batch_rows, round);
    Stopwatch watch;
    auto stats = ingestor.IngestText("SSB", batch);
    if (!stats.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    ingest_seconds.push_back(watch.ElapsedSeconds());
    result.rows_ingested += stats->rows_ingested;
    result.mv_incremental_updates += stats->mv_incremental_updates;
    result.mv_full_rebuilds += stats->mv_full_rebuilds;
    result.cache_invalidations += stats->cache_invalidations;
    result.repacks += stats->repacks;
  }

  result.query_p50_ms = PercentileMs(query_seconds, 0.50);
  result.query_p99_ms = PercentileMs(query_seconds, 0.99);
  result.ingest_p50_ms = PercentileMs(ingest_seconds, 0.50);
  result.ingest_p99_ms = PercentileMs(ingest_seconds, 0.99);
  result.cache = options.shared_cache->stats();
  result.hit_rate =
      result.cache.lookups > 0
          ? static_cast<double>(result.cache.hits()) / result.cache.lookups
          : 0.0;
  return result;
}

void PrintMode(const char* name, const ModeResult& r) {
  std::printf(
      "%-12s query p50 %7.3f ms  p99 %7.3f ms   ingest p50 %7.3f ms  "
      "p99 %7.3f ms\n"
      "             cache: hit rate %.1f%% (%llu lookups, %llu hits, "
      "%llu epoch-swept)\n"
      "             maintenance: %llu delta-merges, %llu full rebuilds, "
      "%llu rows, %llu repacks\n",
      name, r.query_p50_ms, r.query_p99_ms, r.ingest_p50_ms, r.ingest_p99_ms,
      100.0 * r.hit_rate,
      static_cast<unsigned long long>(r.cache.lookups),
      static_cast<unsigned long long>(r.cache.hits()),
      static_cast<unsigned long long>(r.cache.epoch_invalidations),
      static_cast<unsigned long long>(r.mv_incremental_updates),
      static_cast<unsigned long long>(r.mv_full_rebuilds),
      static_cast<unsigned long long>(r.rows_ingested),
      static_cast<unsigned long long>(r.repacks));
}

void WriteModeJson(std::FILE* json, const char* name, const ModeResult& r,
                   bool trailing_comma) {
  std::fprintf(
      json,
      "  \"%s\": {\n"
      "    \"query_p50_ms\": %.4f,\n"
      "    \"query_p99_ms\": %.4f,\n"
      "    \"ingest_p50_ms\": %.4f,\n"
      "    \"ingest_p99_ms\": %.4f,\n"
      "    \"cache_hit_rate\": %.4f,\n"
      "    \"cache_lookups\": %llu,\n"
      "    \"cache_hits\": %llu,\n"
      "    \"cache_epoch_invalidations\": %llu,\n"
      "    \"cache_invalidations\": %llu,\n"
      "    \"rows_ingested\": %llu,\n"
      "    \"mv_incremental_updates\": %llu,\n"
      "    \"mv_full_rebuilds\": %llu,\n"
      "    \"repacks\": %llu\n"
      "  }%s\n",
      name, r.query_p50_ms, r.query_p99_ms, r.ingest_p50_ms, r.ingest_p99_ms,
      r.hit_rate, static_cast<unsigned long long>(r.cache.lookups),
      static_cast<unsigned long long>(r.cache.hits()),
      static_cast<unsigned long long>(r.cache.epoch_invalidations),
      static_cast<unsigned long long>(r.cache_invalidations),
      static_cast<unsigned long long>(r.rows_ingested),
      static_cast<unsigned long long>(r.mv_incremental_updates),
      static_cast<unsigned long long>(r.mv_full_rebuilds),
      static_cast<unsigned long long>(r.repacks),
      trailing_comma ? "," : "");
}

}  // namespace

int main() {
  const double sf = BaseScaleFactorFromEnv(0.01);
  const int rounds = RepsFromEnv(12);
  const int batch_rows = 512;

  std::printf(
      "Ingest churn (SF %.3g, %d rounds, %d rows/batch, SSB workload "
      "twice per round)\n\n",
      sf, rounds, batch_rows);

  ModeResult incremental = RunChurn(true, sf, rounds, batch_rows);
  ModeResult full = RunChurn(false, sf, rounds, batch_rows);
  PrintMode("incremental", incremental);
  PrintMode("full", full);

  std::FILE* json = std::fopen("BENCH_ingest.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ingest.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"scale_factor\": %.6g,\n"
               "  \"rounds\": %d,\n"
               "  \"batch_rows\": %d,\n",
               sf, rounds, batch_rows);
  WriteModeJson(json, "incremental", incremental, /*trailing_comma=*/true);
  WriteModeJson(json, "full_invalidation", full, /*trailing_comma=*/false);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_ingest.json\n");
  return 0;
}
