// Measures the semantic result cache across assess sessions: a cold session
// executes the SSB workload against an empty shared cache, then a warm
// session replays it (plus a drill-out variant answered purely by
// subsumption) against the same cache. Reports per-statement cold/warm wall
// times and the cache counters, and writes BENCH_cache.json for the
// regression record. The warm replay must show exact + subsumption hits > 0
// and a wall-time speedup.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cache/cube_cache.h"

int main() {
  using namespace assess;
  using namespace assess::bench;

  double sf = BaseScaleFactorFromEnv(0.02);
  int reps = RepsFromEnv(1);
  auto db = BuildScale({"SSB", sf});

  // The four workload intentions, plus a sibling comparison at nation
  // granularity whose warm counterpart drills out to region: the region
  // statement's gets are answerable only by re-aggregating the cached
  // nation-level cubes (a subsumption hit, never an exact hit).
  std::vector<WorkloadStatement> cold = SsbWorkload();
  cold.push_back(
      {"DrillNation",
       "with SSB for s_region = 'ASIA' by c_nation, s_region "
       "assess quantity against s_region = 'AMERICA' "
       "using difference(quantity, benchmark.quantity) labels quartiles"});
  std::vector<WorkloadStatement> warm = cold;
  warm.push_back(
      {"DrillRegion",
       "with SSB for s_region = 'ASIA' by c_region, s_region "
       "assess quantity against s_region = 'AMERICA' "
       "using difference(quantity, benchmark.quantity) labels quartiles"});

  ExecutorOptions options;
  options.shared_cache = std::make_shared<CubeResultCache>(options.cache);

  auto run = [&](const AssessSession& session, const WorkloadStatement& stmt,
                 int n) {
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      Stopwatch watch;
      auto result = session.Query(stmt.text);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", stmt.name.c_str(),
                     result.status().ToString().c_str());
        std::exit(1);
      }
      total += watch.ElapsedSeconds();
    }
    return total / n;
  };

  std::printf(
      "Result cache, cross-session reuse (SF %.3g, %d warm rep(s) "
      "averaged)\n\n%-12s %10s %10s %8s\n",
      sf, reps, "statement", "cold(s)", "warm(s)", "speedup");

  AssessSession cold_session(db.get(), options);
  AssessSession warm_session(db.get(), options);
  double cold_total = 0.0, warm_total = 0.0;
  for (size_t i = 0; i < warm.size(); ++i) {
    // DrillRegion has no cold counterpart: its cold time is a fresh scan in
    // the cold session, its warm time a subsumption rewrite in the warm one.
    double cold_s = i < cold.size()
                        ? run(cold_session, warm[i], 1)
                        : run(AssessSession(db.get(), ExecutorOptions{}),
                              warm[i], 1);
    double warm_s = run(warm_session, warm[i], reps);
    cold_total += cold_s;
    warm_total += warm_s;
    std::printf("%-12s %10.4f %10.4f %7.1fx\n", warm[i].name.c_str(), cold_s,
                warm_s, cold_s / warm_s);
  }

  CacheStats stats = warm_session.cache_stats();
  double hit_rate =
      stats.lookups > 0 ? static_cast<double>(stats.hits()) / stats.lookups
                        : 0.0;
  double speedup = warm_total > 0.0 ? cold_total / warm_total : 0.0;
  std::printf(
      "\ntotal        %10.4f %10.4f %7.1fx\n\n"
      "cache: %llu lookups, %llu exact hits, %llu subsumption hits, "
      "%llu misses (hit rate %.1f%%)\n"
      "       %llu insertions, %llu evictions, %llu entries, "
      "%.1f MiB resident (budget %.1f MiB)\n",
      cold_total, warm_total, speedup,
      static_cast<unsigned long long>(stats.lookups),
      static_cast<unsigned long long>(stats.exact_hits),
      static_cast<unsigned long long>(stats.subsumption_hits),
      static_cast<unsigned long long>(stats.misses), 100.0 * hit_rate,
      static_cast<unsigned long long>(stats.insertions),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.entries),
      stats.bytes_resident / (1024.0 * 1024.0),
      options.shared_cache->budget_bytes() / (1024.0 * 1024.0));

  std::FILE* json = std::fopen("BENCH_cache.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cache.json\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"scale_factor\": %.6g,\n"
      "  \"cold_seconds\": %.6f,\n"
      "  \"warm_seconds\": %.6f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"lookups\": %llu,\n"
      "  \"exact_hits\": %llu,\n"
      "  \"subsumption_hits\": %llu,\n"
      "  \"misses\": %llu,\n"
      "  \"hit_rate\": %.4f,\n"
      "  \"evictions\": %llu,\n"
      "  \"bytes_resident\": %llu\n"
      "}\n",
      sf, cold_total, warm_total, speedup,
      static_cast<unsigned long long>(stats.lookups),
      static_cast<unsigned long long>(stats.exact_hits),
      static_cast<unsigned long long>(stats.subsumption_hits),
      static_cast<unsigned long long>(stats.misses), hit_rate,
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.bytes_resident));
  std::fclose(json);
  std::printf("\nwrote BENCH_cache.json\n");

  bool ok = stats.hits() > 0 && stats.subsumption_hits > 0 &&
            warm_total < cold_total;
  if (!ok) {
    std::fprintf(stderr, "FAIL: expected warm hits and warm < cold\n");
    return 1;
  }
  return 0;
}
