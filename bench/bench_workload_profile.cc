// Measures what workload profiling costs and what its advice is worth.
//
// Phase 1 (overhead): the bench_mqo_concurrent correlated workload — six
// loopback clients firing correlated dashboard rounds, a fresh date slice
// per round so the result cache never answers round r from round r-1 —
// runs interleaved with --workload-profile off and on. The profiler's hot
// path is one fingerprint hash + a handful of relaxed atomics per query,
// so the acceptance floor is tight: at most 3% QPS overhead.
//
// Phase 2 (advice): the profile accumulated by the "on" runs is fed to the
// greedy lattice advisor; its top recommendation is materialized via
// StarQueryEngine::MaterializeView, and the hottest profiled query is
// re-timed against the view. The advice must be worth at least a 2x
// speedup on that query, and the engine must confirm the view actually
// answered it.
//
// Writes BENCH_workload.json for the regression record.

#include <atomic>
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/assess_client.h"
#include "obs/workload_profiler.h"
#include "server/assessd.h"
#include "server/protocol.h"
#include "ssb/sales_generator.h"
#include "storage/star_query_engine.h"

namespace {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  long long value = std::atoll(env);
  return value > 0 ? value : fallback;
}

}  // namespace

int main() {
  using namespace assess;
  using namespace assess::bench;

  const int64_t kFacts = EnvInt64("ASSESS_WORKLOAD_BENCH_FACTS", 2000000);
  const int kRounds =
      static_cast<int>(EnvInt64("ASSESS_WORKLOAD_BENCH_ROUNDS", 60));
  const int kTrials =
      static_cast<int>(EnvInt64("ASSESS_WORKLOAD_BENCH_TRIALS", 5));
  constexpr int kClients = 6;

  std::fprintf(stderr, "[bench] generating SALES (%lld facts)...\n",
               static_cast<long long>(kFacts));
  SalesConfig config;
  config.facts = kFacts;
  config.seed = 7;
  auto built = BuildSalesDatabase(config);
  if (!built.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<StarDatabase> db = std::move(*built);

  auto bound = db->Find("SALES");
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  const Hierarchy& date = (*bound)->schema().hierarchy(0);
  if (date.LevelCardinality(0) < kRounds) {
    std::fprintf(stderr, "not enough date members for %d rounds\n", kRounds);
    return 1;
  }

  // The same correlated shapes as bench_mqo_concurrent: a duplicate pair,
  // distinct group-bys over the same slice, and a year roll-up.
  auto statement = [&](int client, int round) {
    const std::string& day = date.MemberName(0, round);
    const char* shape[kClients] = {
        "by month assess quantity",
        "by month assess quantity",  // duplicate of client 0
        "by product assess quantity",
        "by country assess storeSales",
        "by month, country assess storeCost",
        "by year assess quantity",
    };
    return std::string("with SALES for date = '") + day + "' " +
           shape[client] + " against 10 labels quartiles";
  };

  // One concurrent run of the full workload; returns wall seconds. When
  // profiling is on, the server's accumulated report (its profile store is
  // per-server, not process-global) is copied out before the server stops.
  auto run_workload = [&](bool profile_on,
                          WorkloadReport* report = nullptr) -> double {
    ServerOptions options;
    options.worker_threads = 2;
    options.mqo_max_batch = kClients;
    options.workload_profile = profile_on;
    AssessServer server(db.get(), options);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      std::exit(1);
    }
    std::atomic<int> failures{0};
    std::barrier round_barrier(kClients);
    Stopwatch watch;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = AssessClient::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int round = 0; round < kRounds; ++round) {
          round_barrier.arrive_and_wait();
          if (!client->Query(statement(c, round)).ok()) ++failures;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    double seconds = watch.ElapsedSeconds();
    if (profile_on && report != nullptr) *report = server.profiler().BuildReport();
    server.Stop();
    if (failures.load() > 0) {
      std::fprintf(stderr, "FAIL: %d request(s) failed (profile %s)\n",
                   failures.load(), profile_on ? "on" : "off");
      std::exit(1);
    }
    return seconds;
  };

  const int requests = kClients * kRounds;
  std::printf("workload profiler overhead (%lld facts, %d clients, %d rounds, "
              "%d interleaved trials)\n\n",
              static_cast<long long>(kFacts), kClients, kRounds, kTrials);
  std::printf("%6s %9s %10s %10s\n", "trial", "profile", "wall(s)", "qps");

  // Interleave off/on trials so drift (page cache, frequency scaling) hits
  // both configurations equally; score each configuration by its best run.
  run_workload(false);  // warmup, untimed and unprofiled
  double best_off = -1.0;
  double best_on = -1.0;
  WorkloadReport report;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (bool on : {false, true}) {
      double seconds = run_workload(on, on ? &report : nullptr);
      double qps = seconds > 0.0 ? requests / seconds : 0.0;
      std::printf("%6d %9s %10.3f %10.1f\n", trial, on ? "on" : "off",
                  seconds, qps);
      double& best = on ? best_on : best_off;
      if (best < 0.0 || seconds < best) best = seconds;
    }
  }
  double qps_off = requests / best_off;
  double qps_on = requests / best_on;
  double overhead_pct = (best_on - best_off) / best_off * 100.0;
  std::printf("\nbest-of-%d: %.1f qps off, %.1f qps on -> %.2f%% overhead\n\n",
              kTrials, qps_off, qps_on, overhead_pct);

  // Phase 2: the advisor report from the last profiled trial.
  std::printf("%s\n", report.ToText().c_str());
  if (report.recommendations.empty()) {
    std::fprintf(stderr, "FAIL: advisor produced no recommendation\n");
    return 1;
  }
  const MvRecommendation& rec = report.recommendations[0];

  // Time the hottest profiled query (the duplicated by-month slice) with a
  // cache-free local session, materialize the advisor's pick, time again.
  const std::string top_query = statement(0, 0);
  ExecutorOptions exec_options;
  exec_options.use_result_cache = false;
  AssessSession session(db.get(), exec_options);
  auto time_query = [&]() -> double {
    double best = -1.0;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch watch;
      auto result = session.Query(top_query);
      double ms = watch.ElapsedMillis();
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        std::exit(1);
      }
      if (best < 0.0 || ms < best) best = ms;
    }
    return best;
  };

  double before_ms = time_query();
  StarQueryEngine mv_engine(db.get());
  auto view_rows =
      mv_engine.MaterializeView(db.get(), rec.cube, rec.level_names,
                                "advisor_top_pick");
  if (!view_rows.ok()) {
    std::fprintf(stderr, "materialization failed: %s\n",
                 view_rows.status().ToString().c_str());
    return 1;
  }
  double after_ms = time_query();
  bool used_view = session.executor().engine().last_used_view();
  double speedup = after_ms > 0.0 ? before_ms / after_ms : 0.0;

  std::printf("advisor pick %s (%s): %lld estimated rows, %lld actual; "
              "top query %.3f ms -> %.3f ms (%.1fx, view %s)\n",
              rec.node.c_str(), rec.cube.c_str(),
              static_cast<long long>(rec.estimated_rows),
              static_cast<long long>(*view_rows), before_ms, after_ms,
              speedup, used_view ? "used" : "NOT used");

  std::FILE* json = std::fopen("BENCH_workload.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_workload.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"facts\": %lld,\n  \"clients\": %d,\n"
               "  \"rounds\": %d,\n  \"trials\": %d,\n"
               "  \"qps_profile_off\": %.2f,\n"
               "  \"qps_profile_on\": %.2f,\n"
               "  \"profiler_overhead_pct\": %.3f,\n"
               "  \"profile\": {\"fingerprints\": %llu, "
               "\"evicted_fingerprints\": %llu, \"total_queries\": %llu, "
               "\"piggybacked\": %llu},\n"
               "  \"top_recommendation\": {\"cube\": \"%s\", "
               "\"node\": \"%s\", \"estimated_rows\": %lld, "
               "\"actual_rows\": %lld, \"queries_covered\": %llu, "
               "\"expected_scan_savings\": %.0f},\n"
               "  \"materialized_speedup\": {\"before_ms\": %.4f, "
               "\"after_ms\": %.4f, \"speedup\": %.2f, "
               "\"view_used\": %s}\n}\n",
               static_cast<long long>(kFacts), kClients, kRounds, kTrials,
               qps_off, qps_on, overhead_pct,
               static_cast<unsigned long long>(report.fingerprints),
               static_cast<unsigned long long>(report.evicted_fingerprints),
               static_cast<unsigned long long>(report.total_queries),
               static_cast<unsigned long long>(report.piggybacked),
               rec.cube.c_str(), rec.node.c_str(),
               static_cast<long long>(rec.estimated_rows),
               static_cast<long long>(*view_rows),
               static_cast<unsigned long long>(rec.queries_covered),
               rec.expected_scan_savings, before_ms, after_ms, speedup,
               used_view ? "true" : "false");
  std::fclose(json);
  std::printf("wrote BENCH_workload.json\n");

  if (overhead_pct > 3.0) {
    std::fprintf(stderr,
                 "FAIL: profiler overhead %.2f%% above the 3%% floor\n",
                 overhead_pct);
    return 1;
  }
  if (speedup < 2.0 || !used_view) {
    std::fprintf(stderr,
                 "FAIL: advisor pick worth only %.2fx (floor 2x, view %s)\n",
                 speedup, used_view ? "used" : "unused");
    return 1;
  }
  return 0;
}
