// Ablation for the cost-based optimizer (the future-work strategy of
// Section 8, implemented in assess/cost_model.h): for every workload
// intention, compare the plan the cost model picks against the plan that
// is actually fastest, and report the regret of the fixed rule-based
// preference (POP > JOP > NP) and of the cost-based choice.

#include <cstdio>

#include "assess/cost_model.h"
#include "bench_util.h"

int main() {
  using namespace assess;
  using namespace assess::bench;

  SsbConfig config;
  config.scale_factor = DefaultBaseSf() * 10.0;  // the series' middle scale
  auto db = BuildSsbDatabase(config);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  AssessSession session(db->get());
  CostEstimator estimator(db->get());
  int reps = RepsFromEnv();

  std::printf(
      "Cost-model ablation (SF %.3g, %d run(s) averaged):\n"
      "per intention: measured time per plan, the actually-fastest plan,\n"
      "the rule-based choice and the cost-based choice.\n\n",
      config.scale_factor, reps);
  std::printf("%-10s %10s %10s %10s   %-8s %-8s %-8s\n", "", "NP", "JOP",
              "POP", "fastest", "rule", "cost");

  int rule_hits = 0;
  int cost_hits = 0;
  int total = 0;
  for (const WorkloadStatement& stmt : SsbWorkload()) {
    auto analyzed = session.Prepare(stmt.text);
    if (!analyzed.ok()) {
      std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
      return 1;
    }
    double best_time = 0.0;
    PlanKind fastest = PlanKind::kNP;
    double times[3] = {-1.0, -1.0, -1.0};
    bool first = true;
    std::vector<PlanKind> plans = FeasiblePlans(*analyzed);
    std::vector<RunStats> stats =
        RunStatementsInterleaved(session, stmt.text, plans, reps);
    for (size_t i = 0; i < plans.size(); ++i) {
      double t = stats[i].total();
      times[static_cast<int>(plans[i])] = t;
      if (first || t < best_time) {
        best_time = t;
        fastest = plans[i];
        first = false;
      }
    }
    PlanKind rule = BestPlan(*analyzed);
    auto cost_choice = estimator.ChoosePlan(*analyzed);
    if (!cost_choice.ok()) {
      std::fprintf(stderr, "%s\n", cost_choice.status().ToString().c_str());
      return 1;
    }
    ++total;
    if (rule == fastest) ++rule_hits;
    if (*cost_choice == fastest) ++cost_hits;

    auto cell = [&times](PlanKind p) {
      char buf[32];
      double t = times[static_cast<int>(p)];
      if (t < 0) {
        std::snprintf(buf, sizeof(buf), "%10s", "-");
      } else {
        std::snprintf(buf, sizeof(buf), "%10.4f", t);
      }
      return std::string(buf);
    };
    std::printf("%-10s %s %s %s   %-8s %-8s %-8s\n", stmt.name.c_str(),
                cell(PlanKind::kNP).c_str(), cell(PlanKind::kJOP).c_str(),
                cell(PlanKind::kPOP).c_str(),
                std::string(PlanKindToString(fastest)).c_str(),
                std::string(PlanKindToString(rule)).c_str(),
                std::string(PlanKindToString(*cost_choice)).c_str());
  }
  std::printf(
      "\nagreement with the fastest plan: rule-based %d/%d, cost-based "
      "%d/%d\n",
      rule_hits, total, cost_hits, total);
  return 0;
}
