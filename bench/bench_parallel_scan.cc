// Morsel-driven scan benchmark: what the shared task pool and the fused
// scan→aggregate kernel buy on SSB fact scans.
//
//   1. Fused vs. materialize-then-aggregate at 1 thread: the same dense-array
//      aggregation, with and without the intermediate row-id vector the
//      pre-fusion design materialized between selection and aggregation.
//   2. Thread sweep 1/2/4/8 over a selective and a non-selective scan
//      (speedups are only physical up to the host's core count, recorded in
//      the JSON as "host_cores").
//   3. A concurrent-query mix: several clients hammering one shared pool,
//      the assessd deployment in miniature.
//
// Engines run with views and the result cache off so every execution is a
// raw fact scan. Do not set ASSESS_THREADS here — it would force every
// configuration to one parallelism and flatten the sweep. Writes
// BENCH_parallel.json for the regression record.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/task_pool.h"
#include "storage/predicate.h"
#include "storage/star_query_engine.h"

namespace assess {
namespace {

using bench::RepsFromEnv;
using bench::Secs;

// Group-by c_nation under a year predicate, hand-rolled both ways so the
// *only* difference is the intermediate row-id vector. Dense-array sums
// (nation cardinality is tiny) keep the aggregation identical across both.
struct TwoPassTimings {
  double materialize = 0;  // pass 1: row ids; pass 2: aggregate them
  double fused = 0;        // one pass: filter and aggregate together
  double checksum = 0;     // defeats dead-code elimination, sanity-checks
};

TwoPassTimings RunFusionComparison(const BoundCube& bound, int reps) {
  const FactTable& facts = bound.facts();
  const std::vector<int32_t>& date_fk = facts.fk_column(0);
  const std::vector<int32_t>& cust_fk = facts.fk_column(1);
  const std::vector<double>& revenue = facts.measure_column(1);
  const int64_t rows = facts.NumRows();

  std::vector<Predicate> preds = {
      {0, 2, PredicateOp::kIn, {"1997", "1998"}}};
  auto flags_or = BuildDimensionRowFlags(bound.dimension(0), preds);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "flags failed: %s\n",
                 flags_or.status().ToString().c_str());
    std::exit(1);
  }
  const std::vector<uint8_t> flags = *flags_or;
  const std::vector<int32_t>& nation_of =
      bound.dimension(1).level_column(2);  // customer row -> c_nation code
  const size_t nations = static_cast<size_t>(
      bound.schema().hierarchy(1).LevelCardinality(2));

  TwoPassTimings t;
  double check_two_pass = 0, check_fused = 0;
  for (int r = 0; r < reps; ++r) {
    {
      // The pre-fusion shape: selection materializes passing row ids, then
      // aggregation re-visits them. Costs a second pass over the selection's
      // output plus the vector's memory traffic.
      Stopwatch sw;
      std::vector<int64_t> ids;
      for (int64_t i = 0; i < rows; ++i) {
        if (flags[date_fk[i]]) ids.push_back(i);
      }
      std::vector<double> sums(nations, 0.0);
      for (int64_t id : ids) {
        sums[nation_of[cust_fk[id]]] += revenue[id];
      }
      t.materialize += sw.ElapsedSeconds() / reps;
      check_two_pass = 0;
      for (double s : sums) check_two_pass += s;
    }
    {
      // The fused kernel: filter and aggregate in the same row visit.
      Stopwatch sw;
      std::vector<double> sums(nations, 0.0);
      for (int64_t i = 0; i < rows; ++i) {
        if (flags[date_fk[i]]) sums[nation_of[cust_fk[i]]] += revenue[i];
      }
      t.fused += sw.ElapsedSeconds() / reps;
      check_fused = 0;
      for (double s : sums) check_fused += s;
    }
  }
  if (check_two_pass != check_fused) {
    std::fprintf(stderr, "fusion comparison disagrees: %f vs %f\n",
                 check_two_pass, check_fused);
    std::exit(1);
  }
  t.checksum = check_fused;
  return t;
}

struct SweepPoint {
  int threads = 0;
  const char* query = nullptr;
  double seconds = 0;
  uint64_t morsels_scanned = 0;
  uint64_t morsels_skipped = 0;
};

double TimeQuery(const StarQueryEngine& engine, const CubeQuery& query,
                 int reps) {
  double total = 0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    auto cube = engine.Execute(query);
    if (!cube.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   cube.status().ToString().c_str());
      std::exit(1);
    }
    total += sw.ElapsedSeconds();
  }
  return total / reps;
}

}  // namespace
}  // namespace assess

int main() {
  using namespace assess;

  const int reps = bench::RepsFromEnv(5);
  const double sf = BaseScaleFactorFromEnv(0.2);  // 1.2M lineorders default
  const int host_cores =
      static_cast<int>(std::thread::hardware_concurrency());

  SsbScalePoint point;
  point.name = "SSB-parallel";
  point.scale_factor = sf;
  std::unique_ptr<StarDatabase> db = bench::BuildScale(point, false);
  const BoundCube* ssb = *db->Find("SSB");
  const int64_t rows = ssb->facts().NumRows();

  std::printf("parallel scan bench: SF %.3g (%lld rows, %lld morsels), "
              "%d host cores, %d reps\n\n",
              sf, static_cast<long long>(rows),
              static_cast<long long>((rows + kMorselRows - 1) / kMorselRows),
              host_cores, reps);

  // -- 1. Fused vs materialize-then-aggregate, 1 thread ---------------------
  TwoPassTimings fusion = RunFusionComparison(*ssb, reps);
  std::printf("fusion (1 thread, year IN {1997,1998} by c_nation):\n");
  std::printf("  materialize-then-aggregate %ss\n", Secs(fusion.materialize).c_str());
  std::printf("  fused single pass          %ss  (%.2fx)\n\n",
              Secs(fusion.fused).c_str(), fusion.materialize / fusion.fused);

  // -- 2. Thread sweep ------------------------------------------------------
  auto make_query = [&](bool selective) {
    std::vector<Predicate> preds;
    if (selective) {
      preds.push_back({3, 3, PredicateOp::kEquals, {"ASIA"}});
      preds.push_back({0, 2, PredicateOp::kIn, {"1997", "1998"}});
    }
    auto q = CubeQuery::Make(ssb->schema(), "SSB",
                             {"c_nation", "s_region"}, std::move(preds),
                             {"revenue"});
    if (!q.ok()) {
      std::fprintf(stderr, "bad query: %s\n", q.status().ToString().c_str());
      std::exit(1);
    }
    return *q;
  };
  const CubeQuery selective = make_query(true);
  const CubeQuery non_selective = make_query(false);

  std::vector<SweepPoint> sweep;
  double base_selective = 0, base_non_selective = 0;
  std::printf("thread sweep (group by c_nation, s_region):\n");
  std::printf("  %7s  %14s  %9s  %9s  %8s %8s\n", "threads", "query",
              "seconds", "speedup", "scanned", "skipped");
  for (int threads : {1, 2, 4, 8}) {
    EngineOptions options;
    options.use_views = false;
    options.use_result_cache = false;
    options.threads = threads;
    options.pool = std::make_shared<TaskPool>(threads);
    StarQueryEngine engine(db.get(), options);
    for (bool is_selective : {false, true}) {
      const CubeQuery& q = is_selective ? selective : non_selective;
      ScanStats before = engine.scan_stats();
      double seconds = TimeQuery(engine, q, reps);
      ScanStats after = engine.scan_stats();
      SweepPoint p;
      p.threads = threads;
      p.query = is_selective ? "selective" : "non-selective";
      p.seconds = seconds;
      p.morsels_scanned = (after.morsels_scanned - before.morsels_scanned) / reps;
      p.morsels_skipped = (after.morsels_skipped - before.morsels_skipped) / reps;
      double& base = is_selective ? base_selective : base_non_selective;
      if (threads == 1) base = seconds;
      std::printf("  %7d  %14s  %ss  %8.2fx  %8llu %8llu\n", threads, p.query,
                  Secs(seconds).c_str(), base / seconds,
                  static_cast<unsigned long long>(p.morsels_scanned),
                  static_cast<unsigned long long>(p.morsels_skipped));
      sweep.push_back(p);
    }
  }

  // -- 3. Concurrent-query mix over one shared pool -------------------------
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 6;
  auto pool = std::make_shared<TaskPool>(4);
  Stopwatch mix_sw;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      EngineOptions options;
      options.use_views = false;
      options.use_result_cache = false;
      options.threads = 2;
      options.pool = pool;
      StarQueryEngine engine(db.get(), options);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const CubeQuery& q = (i + c) % 2 == 0 ? selective : non_selective;
        auto cube = engine.Execute(q);
        if (!cube.ok()) {
          std::fprintf(stderr, "concurrent query failed: %s\n",
                       cube.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double mix_seconds = mix_sw.ElapsedSeconds();
  TaskPoolStats mix_stats = pool->stats();
  std::printf("\nconcurrent mix: %d clients x %d queries on a 4-worker pool: "
              "%ss (%.1f q/s, %llu morsels scanned, %llu skipped)\n",
              kClients, kQueriesPerClient, Secs(mix_seconds).c_str(),
              kClients * kQueriesPerClient / mix_seconds,
              static_cast<unsigned long long>(mix_stats.morsels_scanned),
              static_cast<unsigned long long>(mix_stats.morsels_skipped));

  // -- JSON record ----------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"scale_factor\": %.6g,\n"
               "  \"rows\": %lld,\n"
               "  \"host_cores\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"fusion_1thread\": {\"materialize_seconds\": %.6f, "
               "\"fused_seconds\": %.6f, \"speedup\": %.3f},\n"
               "  \"thread_sweep\": [\n",
               sf, static_cast<long long>(rows), host_cores, reps,
               fusion.materialize, fusion.fused,
               fusion.materialize / fusion.fused);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    double base = std::string(p.query) == "selective" ? base_selective
                                                      : base_non_selective;
    std::fprintf(json,
                 "    {\"threads\": %d, \"query\": \"%s\", \"seconds\": %.6f, "
                 "\"speedup_vs_1\": %.3f, \"morsels_scanned\": %llu, "
                 "\"morsels_skipped\": %llu}%s\n",
                 p.threads, p.query, p.seconds, base / p.seconds,
                 static_cast<unsigned long long>(p.morsels_scanned),
                 static_cast<unsigned long long>(p.morsels_skipped),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"concurrent_mix\": {\"clients\": %d, "
               "\"queries_per_client\": %d, \"pool_workers\": 4, "
               "\"seconds\": %.6f, \"queries_per_second\": %.2f}\n"
               "}\n",
               kClients, kQueriesPerClient, mix_seconds,
               kClients * kQueriesPerClient / mix_seconds);
  std::fclose(json);
  std::printf("\nwrote BENCH_parallel.json\n");
  return 0;
}
