// Reproduces Figure 3 of the paper: execution times of the NP, JOP and POP
// plans for each intention (Constant, External, Sibling, Past) across the
// SSB1/SSB10/SSB100 scale series. Times are averaged over repeated runs,
// as in Section 6.2. Output is one block per intention with one series per
// feasible plan — the data behind the four log-scale panels of Figure 3.

#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace assess;
  using namespace assess::bench;

  double base = DefaultBaseSf();
  int reps = RepsFromEnv();
  auto scales = SsbScaleSeries(base);
  auto workload = SsbWorkload();

  // intention -> plan -> per-scale seconds.
  std::map<std::string, std::map<PlanKind, std::vector<double>>> series;

  for (const SsbScalePoint& point : scales) {
    auto db = BuildScale(point);
    AssessSession session(db.get());
    for (const WorkloadStatement& stmt : workload) {
      auto analyzed = session.Prepare(stmt.text);
      if (!analyzed.ok()) {
        std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
        return 1;
      }
      std::vector<PlanKind> plans = FeasiblePlans(*analyzed);
      std::vector<RunStats> stats =
          RunStatementsInterleaved(session, stmt.text, plans, reps);
      for (size_t i = 0; i < plans.size(); ++i) {
        series[stmt.name][plans[i]].push_back(stats[i].total());
      }
    }
  }

  std::printf(
      "Figure 3: Execution times (seconds) for increasing cardinalities of\n"
      "the target cube (base SF %.3g, %d run(s) averaged)\n",
      base, reps);
  for (const WorkloadStatement& stmt : workload) {
    std::printf("\n%s:\n%-6s", stmt.name.c_str(), "");
    for (const auto& point : scales) std::printf(" %10s", point.name.c_str());
    std::printf("\n");
    for (const auto& [plan, times] : series[stmt.name]) {
      std::printf("%-6s", std::string(PlanKindToString(plan)).c_str());
      for (double t : times) std::printf(" %10.4f", t);
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape check: Constant is NP-only; JOP <= NP for External;\n"
      "POP <= JOP <= NP for Sibling and Past; every series grows roughly\n"
      "linearly across the 1:10:100 scales.\n");
  return 0;
}
