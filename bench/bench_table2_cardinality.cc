// Reproduces Table 2 of the paper: target cube cardinalities |C| for each
// intention type applied to each detailed cube of the scale series. The by
// and for clauses are fixed, so |C| must scale with |C0| (the paper's
// 1.2e5 -> 1.2e6 -> 1.2e7 progression for Constant, etc.).

#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace assess;
  using namespace assess::bench;

  double base = DefaultBaseSf();
  auto scales = SsbScaleSeries(base);
  auto workload = SsbWorkload();

  // intention -> per-scale |C| (and |C0| per scale).
  std::map<std::string, std::vector<long long>> cardinalities;
  std::vector<long long> detailed;

  for (const SsbScalePoint& point : scales) {
    auto db = BuildScale(point);
    AssessSession session(db.get());
    detailed.push_back(SsbFactCount(point.scale_factor));
    for (const WorkloadStatement& stmt : workload) {
      auto result = session.Query(stmt.text);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", stmt.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      cardinalities[stmt.name].push_back(result->cube.NumRows());
    }
  }

  std::printf(
      "Table 2: Target cube cardinalities for each intention type applied\n"
      "to each detailed cube (base SF %.3g; paper uses SF 1/10/100 with the\n"
      "same 1:10:100 ratio)\n\n",
      base);
  std::printf("%-10s", "");
  for (const auto& point : scales) std::printf(" %12s", point.name.c_str());
  std::printf("\n%-10s", "|C0|");
  for (long long c0 : detailed) std::printf(" %12lld", c0);
  std::printf("\n");
  for (const WorkloadStatement& stmt : workload) {
    std::printf("%-10s", stmt.name.c_str());
    for (long long c : cardinalities[stmt.name]) std::printf(" %12lld", c);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: every intention's |C| grows with the detailed\n"
      "cube across the 1:10:100 series; Past is the smallest target cube.\n");
  return 0;
}
