// Reproduces Table 3 of the paper: minimum execution times across plans for
// each intention and scale, with the corresponding NP time in parentheses.
// The paper's conclusions: the best plan is NP for Constant, JOP for
// External, POP for Sibling and Past, and every intention scales linearly.

#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace assess;
  using namespace assess::bench;

  double base = DefaultBaseSf();
  int reps = RepsFromEnv();
  auto scales = SsbScaleSeries(base);
  auto workload = SsbWorkload();

  struct Entry {
    double best = 0.0;
    double np = 0.0;
    PlanKind best_plan = PlanKind::kNP;
  };
  std::map<std::string, std::vector<Entry>> table;

  for (const SsbScalePoint& point : scales) {
    auto db = BuildScale(point);
    AssessSession session(db.get());
    for (const WorkloadStatement& stmt : workload) {
      auto analyzed = session.Prepare(stmt.text);
      if (!analyzed.ok()) {
        std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
        return 1;
      }
      Entry entry;
      std::vector<PlanKind> plans = FeasiblePlans(*analyzed);
      std::vector<RunStats> stats =
          RunStatementsInterleaved(session, stmt.text, plans, reps);
      bool first = true;
      for (size_t i = 0; i < plans.size(); ++i) {
        double t = stats[i].total();
        if (plans[i] == PlanKind::kNP) entry.np = t;
        if (first || t < entry.best) {
          entry.best = t;
          entry.best_plan = plans[i];
          first = false;
        }
      }
      table[stmt.name].push_back(entry);
    }
  }

  std::printf(
      "Table 3: Minimum execution times in seconds for different intentions\n"
      "(in parentheses, the corresponding execution times for NP; base SF\n"
      "%.3g, %d run(s) averaged)\n\n",
      base, reps);
  std::printf("%-10s", "");
  for (const auto& point : scales) std::printf(" %22s", point.name.c_str());
  std::printf("\n");
  for (const WorkloadStatement& stmt : workload) {
    std::printf("%-10s", stmt.name.c_str());
    for (const Entry& e : table[stmt.name]) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.3f (%.3f) %s", e.best, e.np,
                    std::string(PlanKindToString(e.best_plan)).c_str());
      std::printf(" %22s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: best == NP for Constant; best <= NP everywhere;\n"
      "the largest NP/best gaps are on Sibling and Past (POP wins); times\n"
      "scale roughly linearly across the 1:10:100 series.\n");
  return 0;
}
